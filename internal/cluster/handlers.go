package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"newgame/internal/timingd"
)

func (c *Coordinator) routes() {
	c.mux.HandleFunc("/healthz", c.handleHealth)
	c.mux.HandleFunc("/slack", c.handleSlack)
	c.mux.HandleFunc("/endpoints", c.handleEndpoints)
	c.mux.HandleFunc("/paths", c.handlePaths)
	c.mux.HandleFunc("/triage", c.handleTriage)
	c.mux.HandleFunc("/whatif", c.handleWhatIf)
	c.mux.HandleFunc("/eco", c.handleECO)
	c.mux.HandleFunc("/cluster/register", c.handleRegister)
	c.mux.HandleFunc("/cluster/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("/debug/barriers", c.handleDebugBarriers)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeRaw(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// writeErr maps an error (statusError or not) onto the same JSON error
// envelope single-node timingd uses, so clients parse both identically.
func writeErr(w http.ResponseWriter, err error) int {
	status := http.StatusInternalServerError
	if se, ok := err.(*statusError); ok {
		status = se.code
	}
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
	return status
}

func methodCheck(w http.ResponseWriter, r *http.Request, want string) bool {
	if r.Method != want {
		writeErr(w, &statusError{http.StatusMethodNotAllowed, "use " + want})
		return false
	}
	return true
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, &statusError{http.StatusBadRequest, "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	c.mu.Lock()
	h := ClusterHealth{
		Role:      "coordinator",
		Epoch:     c.epoch,
		Scenarios: len(c.cfg.Scenarios),
		Degraded:  c.degradedLocked(),
		Stale:     c.staleLocked(),
		UptimeSec: time.Since(c.start).Seconds(),
	}
	for _, m := range c.members {
		mh := MemberHealth{ID: m.id, URL: m.url, State: m.state.String(), Epoch: m.epoch}
		for _, ref := range m.scenarios {
			mh.Scenarios = append(mh.Scenarios, ref.Name)
		}
		h.Members = append(h.Members, mh)
	}
	c.mu.Unlock()
	sort.Slice(h.Members, func(i, j int) bool { return h.Members[i].ID < h.Members[j].ID })
	h.Status = "ok"
	if h.Degraded {
		h.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, h)
}

func (c *Coordinator) handleSlack(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !methodCheck(w, r, http.MethodGet) {
		c.observe("slack", start, http.StatusMethodNotAllowed)
		return
	}
	if body, ok := c.cacheGet("/slack"); ok {
		writeRaw(w, body)
		c.observe("slack", start, http.StatusOK)
		return
	}
	var rep *SlackReport
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		rep, err = c.gatherSlack(r.Context())
		if err != errEpochSkew {
			break
		}
	}
	if err != nil {
		c.observe("slack", start, writeErr(w, err))
		return
	}
	body, _ := json.Marshal(rep)
	if !rep.Degraded {
		c.cachePut("/slack", rep.Epoch, body)
	}
	writeRaw(w, body)
	c.observe("slack", start, http.StatusOK)
}

// handleEndpoints proxies GET /endpoints to the shard owning the
// requested scenario, replica fallback included; the response body is
// the shard's own, so it is bit-identical to single-node timingd.
func (c *Coordinator) handleEndpoints(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !methodCheck(w, r, http.MethodGet) {
		c.observe("endpoints", start, http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	idx, name, err := c.scenarioIdx(q.Get("scenario"))
	if err != nil {
		c.observe("endpoints", start, writeErr(w, err))
		return
	}
	key := "/endpoints?" + r.URL.RawQuery
	if body, ok := c.cacheGet(key); ok {
		writeRaw(w, body)
		c.observe("endpoints", start, http.StatusOK)
		return
	}
	limit := 0
	if s := q.Get("limit"); s != "" {
		var perr error
		if limit, perr = strconv.Atoi(s); perr != nil || limit < 0 {
			c.observe("endpoints", start, writeErr(w, &statusError{400, "bad limit " + s}))
			return
		}
	}
	var rep timingd.EndpointsReport
	err = c.proxyScenario(r.Context(), idx, func(ctx2 context.Context, m *member) error {
		var ferr error
		rep, ferr = m.cl.Endpoints(ctx2, name, q.Get("kind"), limit)
		return ferr
	})
	if err != nil {
		c.observe("endpoints", start, writeErr(w, err))
		return
	}
	body, _ := json.Marshal(rep)
	c.cachePut(key, rep.Epoch, body)
	writeRaw(w, body)
	c.observe("endpoints", start, http.StatusOK)
}

func (c *Coordinator) handlePaths(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !methodCheck(w, r, http.MethodGet) {
		c.observe("paths", start, http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	idx, name, err := c.scenarioIdx(q.Get("scenario"))
	if err != nil {
		c.observe("paths", start, writeErr(w, err))
		return
	}
	key := "/paths?" + r.URL.RawQuery
	if body, ok := c.cacheGet(key); ok {
		writeRaw(w, body)
		c.observe("paths", start, http.StatusOK)
		return
	}
	k := 0
	if s := q.Get("k"); s != "" {
		var perr error
		if k, perr = strconv.Atoi(s); perr != nil || k < 0 {
			c.observe("paths", start, writeErr(w, &statusError{400, "bad k " + s}))
			return
		}
	}
	var rep timingd.PathsReport
	err = c.proxyScenario(r.Context(), idx, func(ctx2 context.Context, m *member) error {
		var ferr error
		rep, ferr = m.cl.Paths(ctx2, name, q.Get("kind"), k)
		return ferr
	})
	if err != nil {
		c.observe("paths", start, writeErr(w, err))
		return
	}
	body, _ := json.Marshal(rep)
	c.cachePut(key, rep.Epoch, body)
	writeRaw(w, body)
	c.observe("paths", start, http.StatusOK)
}

func (c *Coordinator) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !methodCheck(w, r, http.MethodPost) {
		c.observe("whatif", start, http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Ops []timingd.Op `json:"ops"`
	}
	if !decodeBody(w, r, &req) {
		c.observe("whatif", start, http.StatusBadRequest)
		return
	}
	rep, err := c.gatherWhatIf(r.Context(), req.Ops)
	if err != nil {
		c.observe("whatif", start, writeErr(w, err))
		return
	}
	writeJSON(w, http.StatusOK, rep)
	c.observe("whatif", start, http.StatusOK)
}

func (c *Coordinator) handleECO(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !methodCheck(w, r, http.MethodPost) {
		c.observe("eco", start, http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Ops []timingd.Op `json:"ops"`
	}
	if !decodeBody(w, r, &req) {
		c.observe("eco", start, http.StatusBadRequest)
		return
	}
	rep, err := c.commitBarrier(r.Context(), req.Ops)
	if err != nil {
		c.observe("eco", start, writeErr(w, err))
		return
	}
	writeJSON(w, http.StatusOK, rep)
	c.observe("eco", start, http.StatusOK)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !methodCheck(w, r, http.MethodPost) {
		c.observe("register", start, http.StatusMethodNotAllowed)
		return
	}
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		c.observe("register", start, http.StatusBadRequest)
		return
	}
	resp, err := c.register(r.Context(), req)
	if err != nil {
		c.observe("register", start, writeErr(w, err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
	c.observe("register", start, http.StatusOK)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodPost) {
		return
	}
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, c.heartbeat(req))
}

func (c *Coordinator) handleDebugBarriers(w http.ResponseWriter, r *http.Request) {
	if !methodCheck(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, DebugBarriersReport{
		Barriers: c.flight.Snapshot(0),
		Dropped:  c.flight.Dropped(),
	})
}
