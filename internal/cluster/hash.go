package cluster

import (
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over member IDs with virtual nodes.
// Scenario names hash onto the ring; Owners walks clockwise collecting
// distinct members, so losing a worker only remaps the scenarios it
// owned and adding one back restores the original placement — the
// property that makes rebalancing after an eviction cheap and
// deterministic across coordinator restarts (no RNG anywhere).
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// fnv1a is FNV-1a 64 — tiny, allocation-free and stable across runs,
// which is all a placement hash needs.
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// buildRing places vnodes points per member. Members may be in any
// order; the ring is identical for identical member sets.
func buildRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   fnv1a(fmt.Sprintf("%s#%d", m, v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owners returns up to n distinct members clockwise from key's hash —
// the preference order for serving key. Fewer than n members on the
// ring returns them all.
func (r *ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			owners = append(owners, p.member)
		}
	}
	return owners
}
