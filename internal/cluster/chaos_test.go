package cluster

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"newgame/internal/parasitics"
	"newgame/internal/timingd"
)

// TestChaosKillBetweenPrepareAndCommit is the barrier's defining
// failure drill: a worker dies after acking prepare but before commit.
// The verify phase must catch it, so NO shard advances its epoch — the
// survivor gets an explicit abort, the corpse's own expiry timer rolls
// it back — the coordinator degrades, further writes refuse, and after
// the worker re-registers the retried ECO commits at the expected epoch
// on every shard.
func TestChaosKillBetweenPrepareAndCommit(t *testing.T) {
	op := resizeOp(t)

	srvA, hsA := startWorker(t, nil, nil)
	// Worker B gets a short prepare-expiry so the test doesn't wait the
	// default 15s for its post-mortem rollback, and its own httptest
	// wrapper we can kill and resurrect.
	srvB, err := timingdNewForChaos(t)
	if err != nil {
		t.Fatal(err)
	}
	hsB := httptest.NewServer(srvB)
	killed := false

	c, chs := startCoordinator(t, func(cfg *Config) {
		cfg.Hooks.BetweenPrepareAndCommit = func(txn string) {
			if !killed {
				killed = true
				hsB.CloseClientConnections()
				hsB.Close()
			}
		}
	})
	registerWorker(t, chs.URL, "wa", srvA, hsA.URL)
	registerWorker(t, chs.URL, "wb", srvB, hsB.URL)

	code, body := postJSONT(t, chs.URL+"/eco", struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}})
	if code != 503 {
		t.Fatalf("eco through a mid-barrier death = %d %s, want 503", code, body)
	}

	// Invariant: no shard advanced. A's abort landed synchronously; B's
	// prepare expires on its own timer.
	if srvA.Epoch() != 0 {
		t.Fatalf("survivor advanced to epoch %d", srvA.Epoch())
	}
	deadline := time.Now().Add(5 * time.Second)
	for srvB.Epoch() == 0 {
		info, err := timingdInfo(srvB)
		if err != nil {
			t.Fatal(err)
		}
		if info.PendingTxn == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker B never expired its prepared txn")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if srvB.Epoch() != 0 {
		t.Fatalf("dead worker advanced to epoch %d", srvB.Epoch())
	}

	// Coordinator is degraded; writes refuse; the flight recorder shows
	// the aborted barrier.
	codeH, bodyH := getT(t, chs.URL+"/healthz")
	var h ClusterHealth
	if codeH != 200 || json.Unmarshal(bodyH, &h) != nil {
		t.Fatal("healthz")
	}
	if !h.Degraded {
		t.Fatalf("coordinator not degraded after mid-barrier death: %+v", h)
	}
	if code, _ := postJSONT(t, chs.URL+"/eco", struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}}); code != 503 {
		t.Fatalf("write against degraded cluster = %d", code)
	}
	_, bodyD := getT(t, chs.URL+"/debug/barriers")
	var dbg DebugBarriersReport
	json.Unmarshal(bodyD, &dbg)
	if len(dbg.Barriers) == 0 || dbg.Barriers[0].Outcome != "aborted" {
		t.Fatalf("barrier record %+v", dbg.Barriers)
	}

	// Resurrect worker B (same server state, new listener), re-register,
	// and retry: the ECO must now commit at epoch 1 everywhere.
	hsB2 := httptest.NewServer(srvB)
	t.Cleanup(func() { hsB2.Close(); srvB.Close() })
	registerWorker(t, chs.URL, "wb", srvB, hsB2.URL)

	code, body = postJSONT(t, chs.URL+"/eco", struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}})
	if code != 200 {
		t.Fatalf("retried eco = %d %s", code, body)
	}
	var rep timingd.WhatIfReport
	json.Unmarshal(body, &rep)
	if !rep.Committed || rep.Epoch != 1 {
		t.Fatalf("retried eco report %+v", rep)
	}
	if c.Epoch() != 1 || srvA.Epoch() != 1 || srvB.Epoch() != 1 {
		t.Fatalf("epochs after retry: coord %d, A %d, B %d", c.Epoch(), srvA.Epoch(), srvB.Epoch())
	}
}

// timingdNewForChaos boots the chaos victim with a short prepare expiry.
func timingdNewForChaos(t *testing.T) (*timingd.Server, error) {
	f := testFixture(t)
	return timingd.NewServer(timingd.Config{
		Design: f.design, Recipe: f.recipe, Stack: parasitics.Stack16(), BasePeriod: 560,
		Seed: 13, QueryWorkers: 2, Role: "worker",
		PrepareTimeout: 250 * time.Millisecond,
	})
}

// timingdInfo asks a server for its cluster info in-process (its HTTP
// listener may be dead — that is the point of the chaos test).
func timingdInfo(s *timingd.Server) (timingd.ClusterInfo, error) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/cluster/info", nil).WithContext(context.Background())
	s.ServeHTTP(rec, req)
	var info timingd.ClusterInfo
	err := json.Unmarshal(rec.Body.Bytes(), &info)
	return info, err
}
