package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"newgame/internal/timingd"
	"newgame/internal/timingd/client"
)

// statusError is the coordinator's HTTP-mapped error.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

var errEpochSkew = &statusError{503, "epoch skew across shards; retry"}

// shardErr maps a worker-call failure onto the coordinator's answer: a
// 4xx from the worker propagates verbatim (the client's request really
// was bad), anything else is the shard's problem, not the caller's.
func shardErr(err error) *statusError {
	if se, ok := err.(*client.StatusError); ok && se.Code < 500 {
		return &statusError{se.Code, se.Msg}
	}
	if errors.Is(err, context.DeadlineExceeded) || isTimeout(err) {
		return &statusError{504, "shard timed out"}
	}
	return &statusError{502, fmt.Sprintf("shard error: %v", err)}
}

func isTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// scenarioPlan is one scenario's fetch plan: its canonical slot and the
// live members able to serve it, in ring-preference order.
type scenarioPlan struct {
	idx        int
	name       string
	candidates []*member
}

// plan snapshots the per-scenario candidate lists and the cluster epoch
// under one lock acquisition.
func (c *Coordinator) plan() (epoch int64, plans []scenarioPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	plans = make([]scenarioPlan, len(c.cfg.Scenarios))
	for idx, name := range c.cfg.Scenarios {
		plans[idx] = scenarioPlan{idx: idx, name: name, candidates: c.candidatesFor(name, idx)}
	}
	return c.epoch, plans
}

// gatherSlack scatter-gathers GET /slack: round one asks each
// scenario's primary shard, a jittered round two asks replicas for
// whatever round one left uncovered, and anything still missing is
// reported stale rather than blocking the answer.
func (c *Coordinator) gatherSlack(ctx context.Context) (*SlackReport, error) {
	_, plans := c.plan()

	slots := make([]*timingd.ScenarioSlack, len(plans))
	var epochs []int64
	fill := func(rep timingd.SlackReport) {
		for i := range rep.Scenarios {
			sc := rep.Scenarios[i]
			for p := range plans {
				if plans[p].name == sc.Scenario && slots[p] == nil {
					cp := sc
					slots[p] = &cp
				}
			}
		}
		epochs = append(epochs, rep.Epoch)
	}

	for round := 0; round < c.cfg.ReplicaFanout; round++ {
		// Distinct member set for this round: the round-th candidate of
		// every still-uncovered scenario.
		targets := map[string]*member{}
		for p := range plans {
			if slots[p] != nil || round >= len(plans[p].candidates) {
				continue
			}
			m := plans[p].candidates[round]
			targets[m.id] = m
		}
		if len(targets) == 0 {
			continue
		}
		if round > 0 {
			select {
			case <-time.After(c.jitter(c.cfg.RetryDelay)):
			case <-ctx.Done():
				return nil, shardErr(ctx.Err())
			}
			c.count("cluster.slack.replica_retries")
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, m := range targets {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				cctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
				defer cancel()
				rep, err := m.cl.Slack(cctx)
				if err != nil {
					c.count("cluster.slack.shard_errors")
					return
				}
				mu.Lock()
				fill(rep)
				mu.Unlock()
			}(m)
		}
		wg.Wait()
	}

	// Every response we merged must have been computed at one epoch; a
	// barrier landing mid-gather shows up as skew and the caller retries
	// the whole gather once against the settled epoch.
	var repEpoch int64
	for i, e := range epochs {
		if i == 0 {
			repEpoch = e
		} else if e != repEpoch {
			c.count("cluster.slack.epoch_skew")
			return nil, errEpochSkew
		}
	}

	out := &SlackReport{Epoch: repEpoch}
	for p := range plans {
		if slots[p] == nil {
			out.Stale = append(out.Stale, plans[p].name)
			continue
		}
		out.Scenarios = append(out.Scenarios, *slots[p])
	}
	if len(out.Scenarios) == 0 {
		return nil, &statusError{503, fmt.Sprintf("all %d scenarios stale: no live shard answered", len(plans))}
	}
	out.Degraded = len(out.Stale) > 0
	out.Merged = mergeSlacks(out.Scenarios)
	return out, nil
}

// mergeSlacks collapses per-scenario numbers across the set: WNS is the
// min clamped at zero, TNS the sum — the same semantics the
// mcmm-merge-min-sum conformance law pins for mcmm.MergedWNS — with the
// dominating scenario named so the ECO loop knows where to look.
func mergeSlacks(scs []timingd.ScenarioSlack) MergedSlack {
	var m MergedSlack
	for _, sc := range scs {
		if sc.SetupWNS < m.SetupWNS {
			m.SetupWNS = sc.SetupWNS
			m.SetupDominant = sc.Scenario
		}
		if sc.HoldWNS < m.HoldWNS {
			m.HoldWNS = sc.HoldWNS
			m.HoldDominant = sc.Scenario
		}
		m.SetupTNS += sc.SetupTNS
		m.HoldTNS += sc.HoldTNS
	}
	return m
}

// scenarioIdx resolves a query's scenario parameter against the
// canonical list ("" = first scenario, matching single-node timingd).
func (c *Coordinator) scenarioIdx(name string) (int, string, error) {
	if name == "" {
		return 0, c.cfg.Scenarios[0], nil
	}
	for idx, n := range c.cfg.Scenarios {
		if n == name {
			return idx, n, nil
		}
	}
	return 0, "", &statusError{400, fmt.Sprintf("unknown scenario %q", name)}
}

// proxyScenario runs fn against scenario idx's candidates in preference
// order with jittered pauses between attempts — the single-shard read
// path behind /endpoints and /paths.
func (c *Coordinator) proxyScenario(ctx context.Context, idx int, fn func(ctx context.Context, m *member) error) error {
	c.mu.Lock()
	name := c.cfg.Scenarios[idx]
	cands := c.candidatesFor(name, idx)
	c.mu.Unlock()
	if len(cands) == 0 {
		return &statusError{503, fmt.Sprintf("scenario %q stale: no live shard serves it", name)}
	}
	if len(cands) > c.cfg.ReplicaFanout {
		cands = cands[:c.cfg.ReplicaFanout]
	}
	var last error
	for i, m := range cands {
		if i > 0 {
			select {
			case <-time.After(c.jitter(c.cfg.RetryDelay)):
			case <-ctx.Done():
				return shardErr(ctx.Err())
			}
			c.count("cluster.proxy.replica_retries")
		}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		err := fn(cctx, m)
		cancel()
		if err == nil {
			return nil
		}
		if se, ok := err.(*client.StatusError); ok && se.Code < 500 {
			// The request itself is bad (unknown kind, bad limit...):
			// a replica would answer identically. Propagate immediately.
			return &statusError{se.Code, se.Msg}
		}
		c.count("cluster.proxy.shard_errors")
		last = err
	}
	return shardErr(last)
}

// gatherWhatIf fans a speculative edit out to a minimal member set
// covering every scenario and merges the per-shard reports in canonical
// order. What-ifs are never partial: an uncovered scenario refuses.
func (c *Coordinator) gatherWhatIf(ctx context.Context, ops []timingd.Op) (*timingd.WhatIfReport, error) {
	_, plans := c.plan()

	// Greedy cover: take the primary of each uncovered scenario; one
	// worker usually covers several scenarios at once.
	covered := make([]bool, len(plans))
	var targets []*member
	for p := range plans {
		if covered[p] {
			continue
		}
		if len(plans[p].candidates) == 0 {
			return nil, &statusError{503, fmt.Sprintf("scenario %q stale: no live shard serves it", plans[p].name)}
		}
		m := plans[p].candidates[0]
		targets = append(targets, m)
		for q := range plans {
			if m.serves[plans[q].idx] {
				covered[q] = true
			}
		}
	}

	reports := make([]*timingd.WhatIfReport, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, m := range targets {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, c.cfg.WriteTimeout)
			defer cancel()
			rep, err := m.cl.WhatIf(cctx, ops)
			if err != nil {
				errs[i] = err
				return
			}
			reports[i] = &rep
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, shardErr(err)
		}
	}

	out := &timingd.WhatIfReport{}
	for i, rep := range reports {
		if i == 0 {
			out.Epoch = rep.Epoch
		} else if rep.Epoch != out.Epoch {
			return nil, errEpochSkew
		}
	}
	var err error
	out.Before, err = mergeScenarioOrder(c.cfg.Scenarios, reports, func(r *timingd.WhatIfReport) []timingd.ScenarioSlack { return r.Before })
	if err != nil {
		return nil, err
	}
	out.After, err = mergeScenarioOrder(c.cfg.Scenarios, reports, func(r *timingd.WhatIfReport) []timingd.ScenarioSlack { return r.After })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mergeScenarioOrder reassembles per-shard scenario slices into the
// canonical recipe order, first answer per scenario wins (replicas are
// bit-identical by construction).
func mergeScenarioOrder(canonical []string, reports []*timingd.WhatIfReport, pick func(*timingd.WhatIfReport) []timingd.ScenarioSlack) ([]timingd.ScenarioSlack, error) {
	slots := make([]*timingd.ScenarioSlack, len(canonical))
	byName := make(map[string]int, len(canonical))
	for i, n := range canonical {
		byName[n] = i
	}
	for _, r := range reports {
		for _, sc := range pick(r) {
			if i, ok := byName[sc.Scenario]; ok && slots[i] == nil {
				cp := sc
				slots[i] = &cp
			}
		}
	}
	out := make([]timingd.ScenarioSlack, 0, len(canonical))
	for i := range slots {
		if slots[i] == nil {
			return nil, &statusError{503, fmt.Sprintf("scenario %q missing from shard reports", canonical[i])}
		}
		out = append(out, *slots[i])
	}
	return out, nil
}
