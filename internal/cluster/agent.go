package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"newgame/internal/timingd"
)

// Source is what the agent announces to the coordinator — implemented
// by *timingd.Server.
type Source interface {
	Epoch() int64
	ScenarioSet() []timingd.ScenarioRef
}

// AgentConfig parameterizes a worker's membership agent.
type AgentConfig struct {
	// ID is the worker's stable identity within the cluster.
	ID string
	// AdvertiseURL is the base URL peers reach this worker at.
	AdvertiseURL string
	// CoordinatorURL is the coordinator's base URL.
	CoordinatorURL string
	// Interval is the heartbeat cadence (default 1s).
	Interval time.Duration
	// Source supplies the worker's epoch and scenario set.
	Source Source
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Logf, when non-nil, receives membership transitions.
	Logf func(format string, args ...any)
}

// Agent keeps one worker registered with its coordinator: it registers
// (retrying until the coordinator is up — boot order is free), then
// heartbeats every Interval, re-registering whenever the coordinator
// stops recognizing it (eviction, coordinator restart).
type Agent struct {
	cfg    AgentConfig
	stopc  chan struct{}
	done   chan struct{}
	once   sync.Once
	mu     sync.Mutex
	synced bool
}

// StartAgent launches the registration/heartbeat loop.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.ID == "" || cfg.AdvertiseURL == "" || cfg.CoordinatorURL == "" || cfg.Source == nil {
		return nil, fmt.Errorf("cluster: agent needs ID, AdvertiseURL, CoordinatorURL and Source")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	a := &Agent{cfg: cfg, stopc: make(chan struct{}), done: make(chan struct{})}
	go a.run()
	return a, nil
}

// Stop ends the loop. Idempotent.
func (a *Agent) Stop() {
	a.once.Do(func() { close(a.stopc) })
	<-a.done
}

// Synced reports whether the last register/heartbeat round-trip
// succeeded — i.e. the coordinator currently counts this worker in.
func (a *Agent) Synced() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.synced
}

func (a *Agent) setSynced(v bool) {
	a.mu.Lock()
	a.synced = v
	a.mu.Unlock()
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func (a *Agent) run() {
	defer close(a.done)
	needRegister := true
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		if needRegister {
			if err := a.register(); err != nil {
				a.setSynced(false)
				a.logf("cluster agent %s: register failed: %v (retrying)", a.cfg.ID, err)
			} else {
				needRegister = false
				a.setSynced(true)
			}
		} else {
			reg, err := a.beat()
			switch {
			case err != nil:
				a.setSynced(false)
				a.logf("cluster agent %s: heartbeat failed: %v", a.cfg.ID, err)
			case reg:
				a.setSynced(false)
				needRegister = true
				a.logf("cluster agent %s: coordinator requests re-registration", a.cfg.ID)
			default:
				a.setSynced(true)
			}
		}
		select {
		case <-a.stopc:
			return
		case <-t.C:
		}
	}
}

func (a *Agent) register() error {
	// Registration may replay the whole missed-barrier suffix onto this
	// worker; give it room well beyond a heartbeat.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := RegisterRequest{
		ID:        a.cfg.ID,
		URL:       a.cfg.AdvertiseURL,
		Epoch:     a.cfg.Source.Epoch(),
		Scenarios: a.cfg.Source.ScenarioSet(),
	}
	var resp RegisterResponse
	if err := a.post(ctx, "/cluster/register", req, &resp); err != nil {
		return err
	}
	a.logf("cluster agent %s: registered at epoch %d (%d replayed)", a.cfg.ID, resp.Epoch, resp.Replayed)
	return nil
}

func (a *Agent) beat() (reRegister bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Interval)
	defer cancel()
	var resp HeartbeatResponse
	if err := a.post(ctx, "/cluster/heartbeat", HeartbeatRequest{ID: a.cfg.ID, Epoch: a.cfg.Source.Epoch()}, &resp); err != nil {
		return false, err
	}
	return resp.Register, nil
}

func (a *Agent) post(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.CoordinatorURL+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := a.cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &eb)
		return fmt.Errorf("coordinator: %d: %s", resp.StatusCode, eb.Error)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
