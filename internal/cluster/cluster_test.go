package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"newgame/internal/circuits"
	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/timingd"
)

// fixture builds the shared design/recipe every worker boots from — the
// in-process analog of "restored from the same pack".
type fixture struct {
	recipe core.Recipe
	design *netlist.Design
	names  []string
}

var (
	fixOnce sync.Once
	fix     fixture
)

func testFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		stack := parasitics.Stack16()
		recipe := core.OldGoalPosts(liberty.Node16, stack)
		d := circuits.Block(recipe.Scenarios[0].Lib, circuits.BlockSpec{
			Name: "cx", Inputs: 8, Outputs: 8, FFs: 20, Gates: 240,
			MaxDepth: 8, Seed: 13, ClockBufferLevels: 2,
			VtMix: [3]float64{0, 0.5, 0.5},
		})
		names := make([]string, len(recipe.Scenarios))
		for i, sc := range recipe.Scenarios {
			names[i] = sc.Name
		}
		fix = fixture{recipe: recipe, design: d, names: names}
	})
	return fix
}

// resizeOp finds a pin-compatible Vt swap in the fixture design.
func resizeOp(t *testing.T) timingd.Op {
	t.Helper()
	f := testFixture(t)
	lib := f.recipe.Scenarios[0].Lib
	for _, c := range f.design.Cells {
		m := lib.Cell(c.TypeName)
		if m == nil || m.IsSequential() || !strings.HasSuffix(c.TypeName, "_SVT") {
			continue
		}
		v := strings.TrimSuffix(c.TypeName, "_SVT") + "_LVT"
		if lib.Cell(v) != nil {
			return timingd.Op{Kind: "resize", Cell: c.Name, To: v}
		}
	}
	t.Fatal("no resize target in fixture")
	return timingd.Op{}
}

// startWorker boots one timingd shard over the fixture, optionally
// filtered to a scenario subset.
func startWorker(t *testing.T, filter []string, mut func(*timingd.Config)) (*timingd.Server, *httptest.Server) {
	t.Helper()
	f := testFixture(t)
	cfg := timingd.Config{
		Design: f.design, Recipe: f.recipe, Stack: parasitics.Stack16(),
		BasePeriod: 560, Seed: 13, QueryWorkers: 2,
		Role: "worker", ScenarioFilter: filter,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := timingd.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

// startCoordinator boots a coordinator over the fixture's scenario
// names with test-friendly timings (no surprise evictions).
func startCoordinator(t *testing.T, mut func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	f := testFixture(t)
	cfg := Config{
		Scenarios:         f.names,
		HeartbeatInterval: time.Hour, // tests drive membership explicitly
		ShardTimeout:      5 * time.Second,
		WriteTimeout:      30 * time.Second,
		RetryDelay:        time.Millisecond,
		Seed:              42,
		Logf:              t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(func() { hs.Close(); c.Close() })
	return c, hs
}

// registerWorker announces a worker to the coordinator over HTTP.
func registerWorker(t *testing.T, coordURL, id string, srv *timingd.Server, url string) RegisterResponse {
	t.Helper()
	var resp RegisterResponse
	code, body := postJSONT(t, coordURL+"/cluster/register", RegisterRequest{
		ID: id, URL: url, Epoch: srv.Epoch(), Scenarios: srv.ScenarioSet(),
	})
	if code != 200 {
		t.Fatalf("register %s: %d %s", id, code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func postJSONT(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func getT(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// startShardedPair boots two workers each owning one of the fixture's
// two scenarios plus a coordinator fronting them.
func startShardedPair(t *testing.T) (*Coordinator, string, []*timingd.Server, []*httptest.Server) {
	t.Helper()
	f := testFixture(t)
	c, chs := startCoordinator(t, nil)
	var srvs []*timingd.Server
	var hss []*httptest.Server
	for i := range f.names {
		srv, hs := startWorker(t, []string{f.names[i]}, nil)
		registerWorker(t, chs.URL, fmt.Sprintf("w%d", i), srv, hs.URL)
		srvs = append(srvs, srv)
		hss = append(hss, hs)
	}
	return c, chs.URL, srvs, hss
}

// TestClusterMergedReads: a two-shard cluster answers /slack with the
// canonical scenario order, correct min/sum merge, and per-scenario
// /endpoints proxied to the owning shard.
func TestClusterMergedReads(t *testing.T) {
	f := testFixture(t)
	_, base, srvs, _ := startShardedPair(t)

	code, body := getT(t, base+"/healthz")
	var h ClusterHealth
	if code != 200 || json.Unmarshal(body, &h) != nil {
		t.Fatalf("healthz %d %s", code, body)
	}
	if h.Status != "ok" || h.Degraded || len(h.Members) != 2 || h.Epoch != 0 {
		t.Fatalf("healthz %+v", h)
	}

	code, body = getT(t, base+"/slack")
	if code != 200 {
		t.Fatalf("slack %d %s", code, body)
	}
	var sr SlackReport
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded || len(sr.Scenarios) != len(f.names) {
		t.Fatalf("slack %+v", sr)
	}
	for i, sc := range sr.Scenarios {
		if sc.Scenario != f.names[i] {
			t.Fatalf("scenario order: got %q at %d, want %q", sc.Scenario, i, f.names[i])
		}
	}
	// Re-derive the merge: min clamped at 0 / sum.
	want := mergeSlacks(sr.Scenarios)
	if sr.Merged != want {
		t.Fatalf("merged %+v want %+v", sr.Merged, want)
	}
	if sr.Merged.SetupTNS != sr.Scenarios[0].SetupTNS+sr.Scenarios[1].SetupTNS {
		t.Fatal("merged TNS is not the sum")
	}

	// Cached second read must be byte-identical.
	_, body2 := getT(t, base+"/slack")
	if !bytes.Equal(body, body2) {
		t.Fatal("cached slack differs")
	}

	// Per-scenario endpoint query routes to the shard owning it and the
	// answer matches asking that shard directly.
	for i, srv := range srvs {
		_ = srv
		code, body := getT(t, base+"/endpoints?scenario="+f.names[i]+"&kind=setup&limit=3")
		if code != 200 {
			t.Fatalf("endpoints[%d]: %d %s", i, code, body)
		}
		var er timingd.EndpointsReport
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Scenario != f.names[i] || len(er.Endpoints) != 3 {
			t.Fatalf("endpoints[%d] %+v", i, er)
		}
	}
	if code, _ := getT(t, base+"/endpoints?scenario=nope"); code != 400 {
		t.Fatalf("unknown scenario = %d", code)
	}
	if code, _ := getT(t, base+"/paths?kind=setup&k=2"); code != 200 {
		t.Fatalf("paths default scenario = %d", code)
	}
}

// TestClusterBarrierCommit: an ECO through the coordinator advances
// every shard and the coordinator to the same epoch atomically, and the
// merged report covers all scenarios in canonical order.
func TestClusterBarrierCommit(t *testing.T) {
	f := testFixture(t)
	c, base, srvs, _ := startShardedPair(t)
	op := resizeOp(t)

	// What-if first: speculative, epoch untouched.
	code, body := postJSONT(t, base+"/whatif", struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}})
	if code != 200 {
		t.Fatalf("whatif %d %s", code, body)
	}
	var wif timingd.WhatIfReport
	json.Unmarshal(body, &wif)
	if wif.Committed || wif.Epoch != 0 || len(wif.After) != len(f.names) {
		t.Fatalf("whatif %+v", wif)
	}

	code, body = postJSONT(t, base+"/eco", struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}})
	if code != 200 {
		t.Fatalf("eco %d %s", code, body)
	}
	var eco timingd.WhatIfReport
	json.Unmarshal(body, &eco)
	if !eco.Committed || eco.Epoch != 1 || len(eco.Before) != len(f.names) || len(eco.After) != len(f.names) {
		t.Fatalf("eco %+v", eco)
	}
	for i := range eco.After {
		if eco.After[i].Scenario != f.names[i] {
			t.Fatalf("eco scenario order %+v", eco.After)
		}
	}
	if c.Epoch() != 1 {
		t.Fatalf("coordinator epoch %d", c.Epoch())
	}
	for i, srv := range srvs {
		if srv.Epoch() != 1 {
			t.Fatalf("worker %d epoch %d", i, srv.Epoch())
		}
	}
	// The what-if's After at epoch 0 equals the committed baseline — the
	// speculative answer was honest.
	code, body = getT(t, base+"/slack")
	var sr SlackReport
	if code != 200 || json.Unmarshal(body, &sr) != nil {
		t.Fatalf("slack %d", code)
	}
	wa, _ := json.Marshal(wif.After)
	sa, _ := json.Marshal(sr.Scenarios)
	if sr.Epoch != 1 || !bytes.Equal(wa, sa) {
		t.Fatalf("post-eco slack mismatch:\n%s\n%s", wa, sa)
	}

	// Barrier flight recorder saw one committed barrier.
	code, body = getT(t, base+"/debug/barriers")
	var dbg DebugBarriersReport
	if code != 200 || json.Unmarshal(body, &dbg) != nil {
		t.Fatal("debug/barriers")
	}
	if len(dbg.Barriers) != 1 || dbg.Barriers[0].Outcome != "committed" || dbg.Barriers[0].Epoch != 1 {
		t.Fatalf("barriers %+v", dbg.Barriers)
	}
}

// TestClusterDegradedReads: a worker dying with sole ownership of a
// scenario degrades reads (the scenario goes stale, the rest keep
// serving) and refuses writes, instead of failing everything.
func TestClusterDegradedReads(t *testing.T) {
	f := testFixture(t)
	_, base, _, hss := startShardedPair(t)
	op := resizeOp(t)

	hss[1].Close() // kill the shard owning scenario 1; member still "alive"

	code, body := getT(t, base+"/slack")
	if code != 200 {
		t.Fatalf("degraded slack must still answer: %d %s", code, body)
	}
	var sr SlackReport
	json.Unmarshal(body, &sr)
	if !sr.Degraded || len(sr.Scenarios) != 1 || sr.Scenarios[0].Scenario != f.names[0] {
		t.Fatalf("degraded slack %+v", sr)
	}
	if len(sr.Stale) != 1 || sr.Stale[0] != f.names[1] {
		t.Fatalf("stale %+v", sr.Stale)
	}

	// The surviving scenario still answers endpoint queries; the stale
	// one refuses with 5xx, not a wrong answer.
	if code, _ := getT(t, base+"/endpoints?scenario="+f.names[0]+"&kind=setup&limit=2"); code != 200 {
		t.Fatalf("surviving scenario endpoints = %d", code)
	}
	if code, _ := getT(t, base+"/endpoints?scenario="+f.names[1]); code < 500 {
		t.Fatalf("stale scenario endpoints = %d, want 5xx", code)
	}

	// Writes refuse cleanly and mark the worker dead.
	code, body = postJSONT(t, base+"/eco", struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}})
	if code != 503 {
		t.Fatalf("eco against half-dead cluster = %d %s", code, body)
	}
	code, body = getT(t, base+"/healthz")
	var h ClusterHealth
	json.Unmarshal(body, &h)
	if !h.Degraded || h.Status != "degraded" {
		t.Fatalf("healthz after dead worker %+v", h)
	}
	// Second write refuses immediately on membership (degraded path).
	if code, _ := postJSONT(t, base+"/eco", struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}}); code != 503 {
		t.Fatalf("second eco = %d", code)
	}
}

// TestClusterCatchUpReplay: a worker joining (or rejoining) behind the
// cluster epoch is replayed forward from the barrier oplog before it
// serves — late boot order is free.
func TestClusterCatchUpReplay(t *testing.T) {
	c, chs := startCoordinator(t, nil)
	srvA, hsA := startWorker(t, nil, nil) // serves both scenarios
	registerWorker(t, chs.URL, "wa", srvA, hsA.URL)
	op := resizeOp(t)

	for i := 0; i < 2; i++ {
		code, body := postJSONT(t, chs.URL+"/eco", struct {
			Ops []timingd.Op `json:"ops"`
		}{[]timingd.Op{op}})
		if code != 200 {
			t.Fatalf("eco %d: %d %s", i, code, body)
		}
	}
	if c.Epoch() != 2 || srvA.Epoch() != 2 {
		t.Fatalf("epochs %d/%d", c.Epoch(), srvA.Epoch())
	}

	// A fresh worker at epoch 0 joins: registration replays both
	// barriers onto it synchronously.
	srvB, hsB := startWorker(t, nil, nil)
	resp := registerWorker(t, chs.URL, "wb", srvB, hsB.URL)
	if resp.Epoch != 2 || resp.Replayed != 2 {
		t.Fatalf("register response %+v", resp)
	}
	if srvB.Epoch() != 2 {
		t.Fatalf("worker B epoch %d after catch-up", srvB.Epoch())
	}
	// Replayed state answers identically to the shard that lived it.
	ctx := context.Background()
	ra, err := timingdSlack(ctx, hsA.URL)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := timingdSlack(ctx, hsB.URL)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(ra.Scenarios)
	jb, _ := json.Marshal(rb.Scenarios)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("replayed shard diverged:\n%s\n%s", ja, jb)
	}

	// A worker "ahead" of the cluster is rejected, not silently adopted.
	srvC, hsC := startWorker(t, nil, nil)
	for i := 0; i < 3; i++ {
		if _, err := timingdCommit(ctx, hsC.URL, []timingd.Op{op}); err != nil {
			t.Fatal(err)
		}
	}
	code, body := postJSONT(t, chs.URL+"/cluster/register", RegisterRequest{
		ID: "wc", URL: hsC.URL, Epoch: srvC.Epoch(), Scenarios: srvC.ScenarioSet(),
	})
	if code != 409 {
		t.Fatalf("ahead-of-cluster register = %d %s", code, body)
	}
}

// TestClusterEvictionAndRevival: missed heartbeats evict; a beat at the
// right epoch revives; a beat behind forces re-registration.
func TestClusterEvictionAndRevival(t *testing.T) {
	c, chs := startCoordinator(t, func(cfg *Config) {
		cfg.HeartbeatInterval = 20 * time.Millisecond
		cfg.DeadAfter = 2
	})
	srv, hs := startWorker(t, nil, nil)
	registerWorker(t, chs.URL, "w0", srv, hs.URL)

	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getT(t, chs.URL+"/healthz")
		var h ClusterHealth
		if code != 200 || json.Unmarshal(body, &h) != nil {
			t.Fatal("healthz")
		}
		if len(h.Members) == 1 && h.Members[0].State == "dead" {
			if !h.Degraded {
				t.Fatalf("dead member but not degraded: %+v", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never evicted: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Beat at the cluster epoch revives in place.
	code, body := postJSONT(t, chs.URL+"/cluster/heartbeat", HeartbeatRequest{ID: "w0", Epoch: srv.Epoch()})
	var hb HeartbeatResponse
	if code != 200 || json.Unmarshal(body, &hb) != nil || hb.Register {
		t.Fatalf("revival heartbeat: %d %s", code, body)
	}
	_ = c
	code, body = getT(t, chs.URL+"/healthz")
	var h ClusterHealth
	json.Unmarshal(body, &h)
	if h.Members[0].State != "alive" || h.Degraded {
		t.Fatalf("after revival %+v", h)
	}

	// Unknown worker is told to register.
	code, body = postJSONT(t, chs.URL+"/cluster/heartbeat", HeartbeatRequest{ID: "stranger", Epoch: 0})
	json.Unmarshal(body, &hb)
	if code != 200 || !hb.Register {
		t.Fatalf("stranger heartbeat %d %+v", code, hb)
	}
}

// TestClusterScenarioMismatch: a worker whose scenario set does not
// match the cluster recipe (wrong pack) is rejected at registration.
func TestClusterScenarioMismatch(t *testing.T) {
	_, chs := startCoordinator(t, nil)
	code, body := postJSONT(t, chs.URL+"/cluster/register", RegisterRequest{
		ID: "wx", URL: "http://localhost:1", Epoch: 0,
		Scenarios: []timingd.ScenarioRef{{Index: 0, Name: "wrong_pack_scenario"}},
	})
	if code != 400 || !strings.Contains(string(body), "different pack") {
		t.Fatalf("mismatch register = %d %s", code, body)
	}
}

// TestAgentLifecycle: the agent registers a live worker, keeps it
// synced via heartbeats, and re-registers after an eviction.
func TestAgentLifecycle(t *testing.T) {
	_, chs := startCoordinator(t, func(cfg *Config) {
		cfg.HeartbeatInterval = 20 * time.Millisecond
		cfg.DeadAfter = 3
	})
	srv, hs := startWorker(t, nil, nil)
	a, err := StartAgent(AgentConfig{
		ID: "wa", AdvertiseURL: hs.URL, CoordinatorURL: chs.URL,
		Interval: 20 * time.Millisecond, Source: srv, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for !a.Synced() {
		if time.Now().After(deadline) {
			t.Fatal("agent never synced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, body := getT(t, chs.URL+"/healthz")
	var h ClusterHealth
	if code != 200 || json.Unmarshal(body, &h) != nil {
		t.Fatal("healthz")
	}
	if len(h.Members) != 1 || h.Members[0].State != "alive" || h.Degraded {
		t.Fatalf("agent-registered health %+v", h)
	}
}

// timingdSlack/timingdCommit are tiny direct-HTTP helpers against a
// worker (avoiding an import cycle on the client package's tests).
func timingdSlack(ctx context.Context, base string) (timingd.SlackReport, error) {
	var out timingd.SlackReport
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/slack", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		return out, fmt.Errorf("slack: %d %s", resp.StatusCode, data)
	}
	return out, json.Unmarshal(data, &out)
}

func timingdCommit(ctx context.Context, base string, ops []timingd.Op) (timingd.WhatIfReport, error) {
	var out timingd.WhatIfReport
	b, _ := json.Marshal(struct {
		Ops []timingd.Op `json:"ops"`
	}{ops})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/eco", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		return out, fmt.Errorf("eco: %d %s", resp.StatusCode, data)
	}
	return out, json.Unmarshal(data, &out)
}
