package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic: identical member sets give identical rings and
// owner orders regardless of input order.
func TestRingDeterministic(t *testing.T) {
	a := buildRing([]string{"w1", "w2", "w3"}, 64)
	b := buildRing([]string{"w3", "w1", "w2"}, 64)
	for _, key := range []string{"func_ss_cw", "func_ff_cb", "scan_shift", "retention"} {
		if got, want := a.Owners(key, 3), b.Owners(key, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("owner order differs for %q: %v vs %v", key, got, want)
		}
	}
}

// TestRingOwnersDistinct: Owners never repeats a member and caps at the
// member count.
func TestRingOwnersDistinct(t *testing.T) {
	r := buildRing([]string{"w1", "w2", "w3"}, 16)
	owners := r.Owners("some_scenario", 10)
	if len(owners) != 3 {
		t.Fatalf("owners = %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %q in %v", o, owners)
		}
		seen[o] = true
	}
	if r.Owners("x", 0) != nil || buildRing(nil, 8).Owners("x", 2) != nil {
		t.Fatal("empty cases must return nil")
	}
}

// TestRingStability: removing one member must not move keys whose
// primary survives — the consistent-hashing property that makes
// eviction rebalancing cheap.
func TestRingStability(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4"}
	full := buildRing(members, 64)
	without := buildRing([]string{"w1", "w2", "w3"}, 64)
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("scenario-%d", i)
		p := full.Owners(key, 1)[0]
		q := without.Owners(key, 1)[0]
		if p == "w4" {
			continue // its keys must move somewhere
		}
		if p != q {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys with surviving primaries moved on member removal", moved)
	}
}
