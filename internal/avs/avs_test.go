package avs

import (
	"math"
	"testing"

	"newgame/internal/aging"
	"newgame/internal/liberty"
)

func controller(m Monitor) Controller {
	return Controller{
		Monitor: m, MarginFrac: 0.04,
		VMin: 0.55, VMax: 1.05, VStep: 0.0125,
	}
}

func TestMonitorTracksConditions(t *testing.T) {
	m := DDROFor(aging.C5315Model())
	base := m.Delay(liberty.TT, 0.8, 85, 0)
	if base <= 0 || math.IsInf(base, 0) {
		t.Fatalf("monitor delay = %v", base)
	}
	if m.Delay(liberty.SS, 0.8, 85, 0) <= base {
		t.Error("SS die should read slower")
	}
	if m.Delay(liberty.FF, 0.8, 85, 0) >= base {
		t.Error("FF die should read faster")
	}
	if m.Delay(liberty.TT, 0.7, 85, 0) <= base {
		t.Error("lower V should read slower")
	}
	if m.Delay(liberty.TT, 0.8, 85, 0.03) <= base {
		t.Error("aged die should read slower")
	}
}

func TestControllerPicksHigherVForSlowerDies(t *testing.T) {
	c := aging.C5315Model().SizeFor(0.8, 0.03)
	ctl := controller(DDROFor(c))
	ctl.Calibrate(c, 105)
	vSS, okSS := ctl.PickVoltage(liberty.SS, 105, 0)
	vTT, okTT := ctl.PickVoltage(liberty.TT, 105, 0)
	vFF, okFF := ctl.PickVoltage(liberty.FF, 105, 0)
	if !okSS || !okTT || !okFF {
		t.Fatalf("controller failed: %v %v %v", okSS, okTT, okFF)
	}
	if !(vSS > vTT && vTT > vFF) {
		t.Errorf("voltage ordering broken: SS %v TT %v FF %v", vSS, vTT, vFF)
	}
}

func TestControllerAgingCompensation(t *testing.T) {
	c := aging.C7552Model().SizeFor(0.8, 0.03)
	ctl := controller(DDROFor(c))
	ctl.Calibrate(c, 105)
	vFresh, _ := ctl.PickVoltage(liberty.TT, 105, 0)
	vAged, _ := ctl.PickVoltage(liberty.TT, 105, 0.035)
	if vAged <= vFresh {
		t.Errorf("aged die should get a higher supply: %v vs %v", vAged, vFresh)
	}
}

func TestCompareAVSSavesPowerAndMeetsTiming(t *testing.T) {
	c := aging.C5315Model().SizeFor(0.8, 0.03)
	ctl := controller(DDROFor(c))
	ctl.Calibrate(c, 105)
	dies := []liberty.ProcessCorner{liberty.SS, liberty.SSG, liberty.TT, liberty.FFG, liberty.FF}
	cmp := Compare(ctl, c, dies, 105)
	for i, o := range cmp.AVS {
		if !o.Met {
			t.Errorf("AVS die %s misses timing at %vV", dies[i].Name, o.V)
		}
	}
	for i, o := range cmp.Fixed {
		if !o.Met {
			t.Errorf("fixed-V die %s misses timing", dies[i].Name)
		}
	}
	if cmp.MeanPowerSaving <= 0.02 {
		t.Errorf("AVS saving = %.1f%%, expected a material gain", cmp.MeanPowerSaving*100)
	}
	// Fast dies must run at or below the fixed worst-case voltage.
	for i, o := range cmp.AVS {
		if dies[i].Name == "FF" && o.V >= cmp.FixedV {
			t.Errorf("FF die AVS voltage %v not below fixed %v", o.V, cmp.FixedV)
		}
	}
	// The DC margin a typical die carries under worst-case signoff must be
	// positive — that's the margin AVS removes.
	if cmp.DCMarginPs <= 0 {
		t.Errorf("DC margin = %v ps, want positive", cmp.DCMarginPs)
	}
}

func TestGenericMonitorNeedsMoreMargin(t *testing.T) {
	// With equal controller margins, a generic (mismatched) monitor should
	// mistrack the DDRO on at least some die/condition: its chosen voltage
	// differs from the matched monitor's.
	c := aging.MPEG2Model().SizeFor(0.8, 0.03)
	ddro := controller(DDROFor(c))
	ddro.Calibrate(c, 105)
	gen := controller(GenericMonitor(c.Tech))
	gen.Calibrate(c, 105)
	diff := 0
	for _, pc := range []liberty.ProcessCorner{liberty.SS, liberty.TT, liberty.FF} {
		v1, _ := ddro.PickVoltage(pc, 105, 0.02)
		v2, _ := gen.PickVoltage(pc, 105, 0.02)
		if math.Abs(v1-v2) > 1e-9 {
			diff++
		}
	}
	if diff == 0 {
		t.Error("generic monitor tracked identically to DDRO across corners; mismatch model inert")
	}
}
