// Package avs implements adaptive voltage scaling: on-die critical-path-
// mimicking monitors (the DDRO idea of the paper's reference [3]), a
// closed-loop voltage controller, and the signoff comparison behind the
// paper's "AVS has been a true game-changer: it enables setup timing to be
// closed at typical corners" (§1.3) — worst-case fixed-voltage signoff
// versus per-die adaptive voltage.
package avs

import (
	"math"

	"newgame/internal/aging"
	"newgame/internal/liberty"
	"newgame/internal/units"
)

// Monitor is a ring-oscillator-style delay monitor built from the same
// device model as the product logic. A design-dependent monitor (DDRO)
// mimics the critical path's Vt mix and wire fraction; a generic monitor
// tracks less faithfully and needs more controller margin.
type Monitor struct {
	Tech   liberty.TechParams
	Stages int
	Vt     liberty.VtClass
	// WireFrac is the voltage-insensitive fraction of the monitor delay.
	WireFrac float64
}

// DDROFor builds a monitor matched to a circuit model (same wire fraction
// and depth class).
func DDROFor(c aging.CircuitModel) Monitor {
	return Monitor{Tech: c.Tech, Stages: c.Stages, Vt: liberty.SVT, WireFrac: c.WireFrac}
}

// GenericMonitor is an unmatched, all-gate LVT ring oscillator.
func GenericMonitor(tech liberty.TechParams) Monitor {
	return Monitor{Tech: tech, Stages: 15, Vt: liberty.LVT, WireFrac: 0}
}

// Delay returns the monitor delay (ps) on a die at the given process
// corner, supply, temperature and accumulated aging.
func (m Monitor) Delay(pc liberty.ProcessCorner, v units.Volt, temp units.Celsius, dvt units.Volt) units.Ps {
	pvt := liberty.PVT{Process: pc, Voltage: v - dvt, Temp: temp}
	r := m.Tech.Req(m.Vt, 1, pvt) * (v / math.Max(v-dvt, 1e-9))
	if math.IsInf(r, 1) {
		return math.Inf(1)
	}
	gate := 0.69 * r * (m.Tech.CparUnit + m.Tech.CinUnit*2.2)
	wire := gate * m.WireFrac / (1 - m.WireFrac)
	return float64(m.Stages) * (gate + wire)
}

// Controller is the closed AVS loop: pick the smallest supply at which the
// monitor indicates the cycle budget is met with margin.
type Controller struct {
	Monitor Monitor
	// MonitorBudget is the monitor delay corresponding to "timing met" at
	// nominal conditions; calibrated at test.
	MonitorBudget units.Ps
	// MarginFrac is the tracking margin covering monitor-vs-path mismatch
	// (larger for generic monitors).
	MarginFrac float64
	VMin, VMax units.Volt
	VStep      units.Volt
}

// Calibrate sets the monitor budget so that, on a typical die at the
// calibration temperature, the monitor and the reference circuit hit their
// targets at the same supply — the test-time fusing step real products do.
func (ctl *Controller) Calibrate(ref aging.CircuitModel, temp units.Celsius) {
	// Find the supply where the reference circuit exactly meets target on
	// a TT die.
	v := ctl.VMin
	for v < ctl.VMax && ref.Delay(v, 0) > ref.TargetDelay() {
		v += 0.001
	}
	ctl.MonitorBudget = ctl.Monitor.Delay(liberty.TT, v, temp, 0)
}

// PickVoltage runs the loop on a die: smallest grid supply whose monitor
// reading is within budget/(1+margin). ok=false when even VMax fails.
func (ctl Controller) PickVoltage(pc liberty.ProcessCorner, temp units.Celsius, dvt units.Volt) (units.Volt, bool) {
	budget := ctl.MonitorBudget / (1 + ctl.MarginFrac)
	for v := ctl.VMin; v <= ctl.VMax+1e-9; v += ctl.VStep {
		if ctl.Monitor.Delay(pc, v, temp, dvt) <= budget {
			return v, true
		}
	}
	return ctl.VMax, false
}

// DieOutcome is one die's operating point under a signoff strategy.
type DieOutcome struct {
	Corner liberty.ProcessCorner
	V      units.Volt
	Power  float64
	// Met reports whether the die actually meets the circuit's target at V.
	Met bool
}

// Comparison contrasts worst-case fixed-voltage signoff with AVS.
type Comparison struct {
	FixedV units.Volt
	Fixed  []DieOutcome
	AVS    []DieOutcome
	// MeanPowerSaving is the population-average power saving of AVS vs
	// fixed (fraction, 0..1).
	MeanPowerSaving float64
	// DCMarginPs is the worst-case margin the fixed strategy carries on a
	// typical die — the "DC component of timing margin" AVS removes
	// (paper footnote 6).
	DCMarginPs units.Ps
}

// Compare evaluates both strategies across a die population (process
// corners with their share of material). The fixed voltage is chosen so the
// slowest die meets timing — the worst-case signoff AVS replaces.
func Compare(ctl Controller, c aging.CircuitModel, dies []liberty.ProcessCorner, temp units.Celsius) Comparison {
	var cmp Comparison
	// Worst-case voltage: slowest die (max Vt shift / min drive).
	fixedV := ctl.VMin
	for _, pc := range dies {
		v := ctl.VMin
		for v < ctl.VMax && circuitDelayAt(c, pc, v, temp) > c.TargetDelay() {
			v += ctl.VStep
		}
		if v > fixedV {
			fixedV = v
		}
	}
	cmp.FixedV = fixedV
	var fixedP, avsP float64
	for _, pc := range dies {
		fp := powerAt(c, pc, fixedV)
		cmp.Fixed = append(cmp.Fixed, DieOutcome{
			Corner: pc, V: fixedV, Power: fp,
			Met: circuitDelayAt(c, pc, fixedV, temp) <= c.TargetDelay(),
		})
		v, _ := ctl.PickVoltage(pc, temp, 0)
		ap := powerAt(c, pc, v)
		cmp.AVS = append(cmp.AVS, DieOutcome{
			Corner: pc, V: v, Power: ap,
			Met: circuitDelayAt(c, pc, v, temp) <= c.TargetDelay(),
		})
		fixedP += fp
		avsP += ap
	}
	if fixedP > 0 {
		cmp.MeanPowerSaving = 1 - avsP/fixedP
	}
	// DC margin on a typical die under fixed-voltage signoff.
	cmp.DCMarginPs = c.TargetDelay() - circuitDelayAt(c, liberty.TT, fixedV, temp)
	return cmp
}

// circuitDelayAt evaluates the circuit model on a die at a process corner
// (the aging.CircuitModel API is TT-based; corner enters via drive/Vt).
func circuitDelayAt(c aging.CircuitModel, pc liberty.ProcessCorner, v units.Volt, temp units.Celsius) units.Ps {
	ttPVT := liberty.PVT{Process: liberty.TT, Voltage: v, Temp: temp}
	pcPVT := liberty.PVT{Process: pc, Voltage: v, Temp: temp}
	rTT := c.Tech.Req(liberty.SVT, 1, ttPVT)
	rPC := c.Tech.Req(liberty.SVT, 1, pcPVT)
	base := c.Delay(v, 0)
	if math.IsInf(rPC, 1) || math.IsInf(base, 1) {
		return math.Inf(1)
	}
	// Scale the gate (voltage-sensitive) part by the corner's R ratio.
	wire := float64(c.Stages) * wireDelayPerStage(c)
	return (base-wire)*(rPC/rTT) + wire
}

func wireDelayPerStage(c aging.CircuitModel) units.Ps {
	// Mirror of the circuit model's internal wire split.
	pvt := liberty.PVT{Process: liberty.TT, Voltage: c.Tech.VDDNominal, Temp: c.Temp}
	r := c.Tech.Req(liberty.SVT, 1, pvt)
	gateCap := c.Tech.CinUnit*2.2 + c.Tech.CparUnit
	gatePart := 0.69 * r * gateCap
	return gatePart * c.WireFrac / (1 - c.WireFrac) / 2
}

func powerAt(c aging.CircuitModel, pc liberty.ProcessCorner, v units.Volt) float64 {
	p := c.Power(v, 0)
	// Fast corners leak more (lower Vt): scale leakage-ish share.
	leakBias := math.Exp(-pc.VtShift / 0.025)
	// Approximate leakage share at 30%.
	return p * (0.7 + 0.3*leakBias)
}
