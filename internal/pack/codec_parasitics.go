package pack

import (
	"fmt"

	"newgame/internal/pack/wire"
	"newgame/internal/parasitics"
	"newgame/internal/units"
)

func encodeStack(w *wire.Writer, s *parasitics.Stack) {
	w.String(s.Name)
	w.U32(uint32(len(s.Layers)))
	for _, l := range s.Layers {
		w.String(l.Name)
		w.F64(float64(l.RPerUm))
		w.F64(float64(l.CPerUm))
		w.F64(float64(l.CcPerUm))
		w.Bool(l.MultiPatterned)
		w.F64(l.RSigma)
		w.F64(l.CSigma)
		w.F64(l.CcSigma)
		w.F64(l.MinWidthUm)
		w.F64(l.JMaxPerUm)
	}
}

func decodeStack(r *wire.Reader) (*parasitics.Stack, error) {
	s := &parasitics.Stack{Name: r.String()}
	n := r.Count(8)
	if r.Err() != nil {
		return nil, r.Err()
	}
	s.Layers = make([]parasitics.Layer, 0, n)
	for i := 0; i < n; i++ {
		var l parasitics.Layer
		l.Name = r.String()
		l.RPerUm = units.KOhm(r.F64())
		l.CPerUm = units.FF(r.F64())
		l.CcPerUm = units.FF(r.F64())
		l.MultiPatterned = r.Bool()
		l.RSigma = r.F64()
		l.CSigma = r.F64()
		l.CcSigma = r.F64()
		l.MinWidthUm = r.F64()
		l.JMaxPerUm = r.F64()
		s.Layers = append(s.Layers, l)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// encodeScaling writes an optional per-layer BEOL corner scaling.
func encodeScaling(w *wire.Writer, s *parasitics.Scaling) {
	w.Bool(s != nil)
	if s == nil {
		return
	}
	w.F64Slab(s.R)
	w.F64Slab(s.C)
	w.F64Slab(s.Cc)
}

// decodeScaling validates each factor array against the stack's layer
// count: trees index the scaling arrays by segment layer.
func decodeScaling(r *wire.Reader, nLayers int) (*parasitics.Scaling, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	s := &parasitics.Scaling{R: r.F64Slab(), C: r.F64Slab(), Cc: r.F64Slab()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(s.R) != nLayers || len(s.C) != nLayers || len(s.Cc) != nLayers {
		return nil, fmt.Errorf("pack: scaling for %d/%d/%d layers against a %d-layer stack",
			len(s.R), len(s.C), len(s.Cc), nLayers)
	}
	return s, nil
}

func encodeTrees(w *wire.Writer, trees []NetTree) error {
	w.U32(uint32(len(trees)))
	for _, nt := range trees {
		if nt.Tree == nil {
			return fmt.Errorf("pack: saved tree for net %q is nil", nt.Net)
		}
		w.String(nt.Net)
		w.I64(int64(nt.Need))
		encodeTree(w, nt.Tree)
	}
	return nil
}

func decodeTrees(r *wire.Reader, nLayers int) ([]NetTree, error) {
	n := r.Count(12)
	if r.Err() != nil {
		return nil, r.Err()
	}
	trees := make([]NetTree, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		nt := NetTree{Net: r.String()}
		need := r.I64()
		t, err := decodeTree(r, nLayers)
		if err != nil {
			return nil, err
		}
		if seen[nt.Net] {
			return nil, fmt.Errorf("pack: duplicate saved tree for net %q", nt.Net)
		}
		seen[nt.Net] = true
		if need < 1 || int(need) != len(t.Sinks) {
			return nil, fmt.Errorf("pack: net %q tree routed for %d sinks but has %d", nt.Net, need, len(t.Sinks))
		}
		nt.Need = int(need)
		nt.Tree = t
		trees = append(trees, nt)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return trees, nil
}

func encodeTree(w *wire.Writer, t *parasitics.Tree) {
	w.U32(uint32(len(t.Parent)))
	for _, p := range t.Parent {
		w.U32(uint32(int32(p)))
	}
	w.F64Slab(t.R)
	w.F64Slab(t.C)
	w.F64Slab(t.Cc)
	w.U32(uint32(len(t.Layer)))
	for _, l := range t.Layer {
		w.U32(uint32(int32(l)))
	}
	w.U32(uint32(len(t.Sinks)))
	for _, s := range t.Sinks {
		w.U32(uint32(int32(s)))
	}
}

func decodeTree(r *wire.Reader, nLayers int) (*parasitics.Tree, error) {
	ints := func() []int {
		vs := r.I32Slab()
		if vs == nil {
			return nil
		}
		out := make([]int, len(vs))
		for i, v := range vs {
			out[i] = int(v)
		}
		return out
	}
	t := &parasitics.Tree{Parent: ints()}
	t.R = r.F64Slab()
	t.C = r.F64Slab()
	t.Cc = r.F64Slab()
	t.Layer = ints()
	t.Sinks = ints()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Validate covers root/parent topology, array lengths, and sink
	// ranges; layer indices additionally must address the decoded stack.
	if err := t.Validate(); err != nil {
		return nil, err
	}
	for i, l := range t.Layer {
		if l < -1 || l >= nLayers {
			return nil, fmt.Errorf("pack: tree node %d on layer %d of a %d-layer stack", i, l, nLayers)
		}
	}
	return t, nil
}
