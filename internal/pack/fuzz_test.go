package pack

import (
	"testing"

	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
)

// tinySnapshot is a minimal-but-complete pack: one buffer cell, a two-net
// design, one parasitic tree, a one-scenario recipe, no topology. Small
// enough to seed the fuzz corpus without bloating testdata.
func tinySnapshot(t testing.TB) *Snapshot {
	t.Helper()
	one := []float64{10}
	tbl := func(v float64) *liberty.Table2D {
		return liberty.NewTable2D(one, one, func(r, c float64) float64 { return v })
	}
	lib := liberty.NewLibrary("tiny", liberty.Node16,
		liberty.PVT{Process: liberty.TT, Voltage: 0.8, Temp: 85})
	lib.Add(&liberty.Cell{
		Name: "BUF_X1_SVT", Function: "BUF", Drive: 1, Vt: liberty.SVT,
		Area: 1, Leakage: 2, MaxTran: 300,
		Pins: []liberty.PinSpec{
			{Name: "A", Input: true, Cap: 1.5},
			{Name: "Z", MaxCap: 60},
		},
		Arcs: []liberty.TimingArc{{
			From: "A", To: "Z", Sense: liberty.PositiveUnate,
			DelayRise: tbl(12), DelayFall: tbl(13),
			SlewRise: tbl(20), SlewFall: tbl(21),
			MISFactorFast: 1, MISFactorSlow: 1,
		}},
	})
	d, err := netlist.FromBlueprint(&netlist.Blueprint{
		Name: "tiny", NameSeq: 1,
		Cells: []netlist.BlueprintCell{{
			Name: "u1", TypeName: "BUF_X1_SVT",
			Pins: []netlist.PinDecl{netlist.In("A"), netlist.Out("Z")},
		}},
		Nets: []netlist.BlueprintNet{
			{Name: "n_in", Driver: netlist.PinRef{Cell: -1, Pin: -1},
				Loads: []netlist.PinRef{{Cell: 0, Pin: 0}}, Port: 0},
			{Name: "n_out", Driver: netlist.PinRef{Cell: 0, Pin: 1}, Port: 1},
		},
		Ports: []netlist.BlueprintPort{
			{Name: "in", Dir: netlist.Input, Net: 0},
			{Name: "out", Dir: netlist.Output, Net: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := parasitics.NewTree()
	n := tr.AddNode(0, 0.02, 1.1, 0.3, 2)
	tr.MarkSink(n)
	return &Snapshot{
		Design: d,
		Recipe: &core.Recipe{
			Name: "tiny",
			Scenarios: []core.Scenario{
				{Name: "setup", Lib: lib, PeriodScale: 1, ForSetup: true},
			},
			MaxIterations: 1,
		},
		Stack:      parasitics.Stack16(),
		ClockPort:  "in",
		BasePeriod: 500,
		Seed:       1,
		Epoch:      0,
		Trees:      []NetTree{{Net: "n_out", Need: 1, Tree: tr}},
	}
}

// FuzzPackDecode feeds hostile bytes to the full decode stack. The contract
// under attack: never panic, never over-allocate (wire.Reader caps every
// count by remaining bytes), and anything that decodes must re-encode.
func FuzzPackDecode(f *testing.F) {
	tiny, err := Encode(tinySnapshot(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tiny)
	// Structural mutants seed the interesting branches: bad section CRC,
	// truncated table, foreign magic.
	if len(tiny) > 64 {
		mut := append([]byte(nil), tiny...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
		f.Add(tiny[:len(tiny)/2])
	}
	f.Add([]byte("NGTP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := Encode(snap); err != nil {
			t.Fatalf("decoded pack failed to re-encode: %v", err)
		}
	})
}

// FuzzLogDecode drives the epoch-record frame decoder the same way.
func FuzzLogDecode(f *testing.F) {
	rec := EpochRecord{Epoch: 7, Ops: []EpochOp{
		{Kind: "resize", Cell: "u1", To: "INV_X2_LVT"},
		{Kind: "buffer", Net: "n1", Loads: []string{"u2/A"}, To: "BUF_X1_SVT"},
	}}
	f.Add(encodeEpochRecord(rec))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := decodeEpochRecord(data); err != nil {
			return
		}
	})
}
