package pack

import (
	"fmt"

	"newgame/internal/netlist"
	"newgame/internal/pack/wire"
)

// encodeDesign writes the design as its order-exact blueprint. All the
// structural validation lives in netlist.FromBlueprint on the decode side,
// so the section carries indices verbatim.
func encodeDesign(w *wire.Writer, d *netlist.Design) error {
	bp := d.Blueprint()
	w.String(bp.Name)
	w.I64(int64(bp.NameSeq))
	w.U32(uint32(len(bp.Cells)))
	for _, c := range bp.Cells {
		w.String(c.Name)
		w.String(c.TypeName)
		w.U32(uint32(len(c.Pins)))
		for _, p := range c.Pins {
			w.String(p.Name)
			w.U8(uint8(p.Dir))
		}
	}
	w.U32(uint32(len(bp.Nets)))
	for _, n := range bp.Nets {
		w.String(n.Name)
		w.U32(uint32(n.Driver.Cell))
		w.U32(uint32(n.Driver.Pin))
		w.U32(uint32(len(n.Loads)))
		for _, l := range n.Loads {
			w.U32(uint32(l.Cell))
			w.U32(uint32(l.Pin))
		}
		w.U32(uint32(n.Port))
	}
	w.U32(uint32(len(bp.Ports)))
	for _, p := range bp.Ports {
		w.String(p.Name)
		w.U8(uint8(p.Dir))
		w.U32(uint32(p.Net))
	}
	return nil
}

func decodePinDir(r *wire.Reader, what string) (netlist.PinDir, error) {
	d := netlist.PinDir(r.U8())
	if r.Err() == nil && d != netlist.Input && d != netlist.Output {
		return 0, fmt.Errorf("pack: %s has bad direction %d", what, d)
	}
	return d, nil
}

func decodeDesign(r *wire.Reader) (*netlist.Design, error) {
	bp := &netlist.Blueprint{Name: r.String()}
	seq := r.I64()
	if r.Err() == nil && (seq < 0 || seq > int64(int(^uint(0)>>1))) {
		return nil, fmt.Errorf("pack: design name sequence %d out of range", seq)
	}
	bp.NameSeq = int(seq)
	nCells := r.Count(9) // name + type prefixes + pin count
	if r.Err() != nil {
		return nil, r.Err()
	}
	bp.Cells = make([]netlist.BlueprintCell, 0, nCells)
	for i := 0; i < nCells; i++ {
		c := netlist.BlueprintCell{Name: r.String(), TypeName: r.String()}
		nPins := r.Count(5)
		if r.Err() != nil {
			return nil, r.Err()
		}
		c.Pins = make([]netlist.PinDecl, 0, nPins)
		for j := 0; j < nPins; j++ {
			name := r.String()
			dir, err := decodePinDir(r, "pin "+name)
			if err != nil {
				return nil, err
			}
			c.Pins = append(c.Pins, netlist.PinDecl{Name: name, Dir: dir})
		}
		bp.Cells = append(bp.Cells, c)
	}
	nNets := r.Count(17)
	if r.Err() != nil {
		return nil, r.Err()
	}
	bp.Nets = make([]netlist.BlueprintNet, 0, nNets)
	for i := 0; i < nNets; i++ {
		n := netlist.BlueprintNet{Name: r.String()}
		n.Driver = netlist.PinRef{Cell: int32(r.U32()), Pin: int32(r.U32())}
		nLoads := r.Count(8)
		if r.Err() != nil {
			return nil, r.Err()
		}
		n.Loads = make([]netlist.PinRef, 0, nLoads)
		for j := 0; j < nLoads; j++ {
			n.Loads = append(n.Loads, netlist.PinRef{Cell: int32(r.U32()), Pin: int32(r.U32())})
		}
		n.Port = int32(r.U32())
		bp.Nets = append(bp.Nets, n)
	}
	nPorts := r.Count(9)
	if r.Err() != nil {
		return nil, r.Err()
	}
	bp.Ports = make([]netlist.BlueprintPort, 0, nPorts)
	for i := 0; i < nPorts; i++ {
		name := r.String()
		dir, err := decodePinDir(r, "port "+name)
		if err != nil {
			return nil, err
		}
		bp.Ports = append(bp.Ports, netlist.BlueprintPort{Name: name, Dir: dir, Net: int32(r.U32())})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return netlist.FromBlueprint(bp)
}
