// Package pack implements the binary snapshot format for timingd's full
// resident state — the netlist design, the corner libraries with their NLDM
// and LVF tables, the synthesized parasitic trees, the signoff recipe, and
// the frozen SoA timing-graph topology — plus the append-only epoch log of
// committed edits (log.go). Together they give the daemon O(read) warm
// starts that skip text parsing and Kahn levelization, crash recovery by
// replaying the log tail onto the last snapshot, and point-in-time rewind.
//
// Container layout (DESIGN.md §14): a 4-byte magic "NGTP", a u16 format
// version, a u16 section count, then a section table of {tag[4], offset
// u64, length u64, CRC-32 u32} entries followed by the section payloads.
// All integers are little-endian; floats are raw IEEE-754 bits, so decoded
// state is bit-identical to what was saved. Every section is independently
// checksummed (CRC-32, IEEE polynomial); unknown trailing sections are
// ignored so older readers skip newer extensions.
//
// The decoder assumes hostile input: every length prefix is capped by the
// bytes actually remaining (wire.Reader), every index is range-checked, and
// decoded structures are structurally validated before use — FuzzPackDecode
// holds it to "error cleanly, never panic, never over-allocate".
package pack

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"newgame/internal/core"
	"newgame/internal/netlist"
	"newgame/internal/pack/wire"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/units"
)

const (
	// Magic identifies a snapshot pack file.
	Magic = "NGTP"
	// Version is the current format version.
	Version = 1

	headerSize       = 4 + 2 + 2 // magic + version + section count
	sectionEntrySize = 4 + 8 + 8 + 4
)

// Section tags. The table may carry tags this version does not know; they
// are skipped on decode.
const (
	secMeta   = "META" // clock port, base period, seed, epoch
	secDesign = "DSGN" // netlist blueprint
	secLibs   = "LIBS" // deduplicated corner libraries
	secRecipe = "SCEN" // signoff recipe; scenarios reference LIBS by index
	secStack  = "STAK" // BEOL metal stack
	secTopo   = "TOPO" // frozen SoA timing-graph topology
	secTrees  = "TREE" // synthesized per-net RC trees
)

// NetTree is one saved parasitic tree: the net it was synthesized for and
// the sink count it was routed at (a restored binder serves it only while
// the net still has that fanout).
type NetTree struct {
	Net  string
	Need int
	Tree *parasitics.Tree
}

// Snapshot is the full resident state of a timing session at one epoch.
type Snapshot struct {
	Design       *netlist.Design
	Recipe       *core.Recipe
	Stack        *parasitics.Stack
	ClockPort    string
	BasePeriod   units.Ps
	InputArrival units.Ps
	Seed         int64
	// Epoch is the committed-edit epoch the state reflects.
	Epoch int64
	// Topology is the frozen timing graph, or nil if none was saved; a
	// restored server adopts it to skip pointer-walk and levelization.
	Topology *sta.Topology
	// Trees holds the parasitic trees that were resident at save time.
	Trees []NetTree
}

// SavedTrees converts the snapshot's tree list to the form
// sta.NewSnapshotNetBinder consumes. Returns nil when no trees were saved.
func (s *Snapshot) SavedTrees() map[string]sta.SavedTree {
	if len(s.Trees) == 0 {
		return nil
	}
	m := make(map[string]sta.SavedTree, len(s.Trees))
	for _, nt := range s.Trees {
		m[nt.Net] = sta.SavedTree{Need: nt.Need, Tree: nt.Tree}
	}
	return m
}

// Encode serializes the snapshot into the container format.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil || s.Design == nil || s.Recipe == nil || s.Stack == nil {
		return nil, fmt.Errorf("pack: snapshot missing design, recipe or stack")
	}
	if s.Epoch < 0 {
		return nil, fmt.Errorf("pack: negative epoch %d", s.Epoch)
	}
	libs, libIdx, err := collectLibs(s.Recipe)
	if err != nil {
		return nil, err
	}
	type section struct {
		tag     string
		payload []byte
	}
	var sections []section
	add := func(tag string, encode func(w *wire.Writer) error) error {
		var w wire.Writer
		if err := encode(&w); err != nil {
			return err
		}
		sections = append(sections, section{tag: tag, payload: w.Bytes()})
		return nil
	}
	steps := []struct {
		tag string
		fn  func(w *wire.Writer) error
	}{
		{secMeta, func(w *wire.Writer) error {
			w.String(s.ClockPort)
			w.F64(float64(s.BasePeriod))
			w.F64(float64(s.InputArrival))
			w.I64(s.Seed)
			w.I64(s.Epoch)
			return nil
		}},
		{secDesign, func(w *wire.Writer) error { return encodeDesign(w, s.Design) }},
		{secStack, func(w *wire.Writer) error { encodeStack(w, s.Stack); return nil }},
		{secLibs, func(w *wire.Writer) error { return encodeLibs(w, libs) }},
		{secRecipe, func(w *wire.Writer) error { return encodeRecipe(w, s.Recipe, libIdx) }},
		{secTopo, func(w *wire.Writer) error {
			w.Bool(s.Topology != nil)
			if s.Topology != nil {
				sta.PackTopology(w, s.Topology)
			}
			return nil
		}},
		{secTrees, func(w *wire.Writer) error { return encodeTrees(w, s.Trees) }},
	}
	for _, st := range steps {
		if err := add(st.tag, st.fn); err != nil {
			return nil, err
		}
	}

	var out wire.Writer
	out.U8(Magic[0])
	out.U8(Magic[1])
	out.U8(Magic[2])
	out.U8(Magic[3])
	out.U16(Version)
	out.U16(uint16(len(sections)))
	offset := uint64(headerSize + sectionEntrySize*len(sections))
	for _, sec := range sections {
		out.U8(sec.tag[0])
		out.U8(sec.tag[1])
		out.U8(sec.tag[2])
		out.U8(sec.tag[3])
		out.U64(offset)
		out.U64(uint64(len(sec.payload)))
		out.U32(crc32.ChecksumIEEE(sec.payload))
		offset += uint64(len(sec.payload))
	}
	for _, sec := range sections {
		out.Raw(sec.payload)
	}
	return out.Bytes(), nil
}

// Decode parses a snapshot pack. It tolerates unknown extra sections but
// requires every section this version defines, validates each section's
// CRC, and structurally validates all decoded state; corrupt or hostile
// input yields an error, never a panic.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("pack: input shorter than header")
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("pack: bad magic %q", data[:4])
	}
	hdr := wire.NewReader(data[4:headerSize])
	version := hdr.U16()
	nSec := int(hdr.U16())
	if version != Version {
		return nil, fmt.Errorf("pack: unsupported format version %d (want %d)", version, Version)
	}
	tableEnd := headerSize + nSec*sectionEntrySize
	if tableEnd > len(data) {
		return nil, fmt.Errorf("pack: section table for %d sections exceeds %d-byte input", nSec, len(data))
	}
	payloads := map[string][]byte{}
	tr := wire.NewReader(data[headerSize:tableEnd])
	for i := 0; i < nSec; i++ {
		tag := string([]byte{tr.U8(), tr.U8(), tr.U8(), tr.U8()})
		off := tr.U64()
		length := tr.U64()
		crc := tr.U32()
		if tr.Err() != nil {
			return nil, tr.Err()
		}
		if off < uint64(tableEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("pack: section %q [%d, +%d) outside input", tag, off, length)
		}
		payload := data[off : off+length]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("pack: section %q checksum mismatch", tag)
		}
		if _, dup := payloads[tag]; dup {
			return nil, fmt.Errorf("pack: duplicate section %q", tag)
		}
		payloads[tag] = payload
	}
	need := func(tag string) (*wire.Reader, error) {
		p, ok := payloads[tag]
		if !ok {
			return nil, fmt.Errorf("pack: missing section %q", tag)
		}
		return wire.NewReader(p), nil
	}

	s := &Snapshot{}
	r, err := need(secMeta)
	if err != nil {
		return nil, err
	}
	s.ClockPort = r.String()
	s.BasePeriod = units.Ps(r.F64())
	s.InputArrival = units.Ps(r.F64())
	s.Seed = r.I64()
	s.Epoch = r.I64()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if s.Epoch < 0 {
		return nil, fmt.Errorf("pack: negative epoch %d", s.Epoch)
	}

	if r, err = need(secDesign); err != nil {
		return nil, err
	}
	if s.Design, err = decodeDesign(r); err != nil {
		return nil, err
	}

	if r, err = need(secStack); err != nil {
		return nil, err
	}
	if s.Stack, err = decodeStack(r); err != nil {
		return nil, err
	}

	if r, err = need(secLibs); err != nil {
		return nil, err
	}
	libs, err := decodeLibs(r)
	if err != nil {
		return nil, err
	}

	if r, err = need(secRecipe); err != nil {
		return nil, err
	}
	if s.Recipe, err = decodeRecipe(r, libs, len(s.Stack.Layers)); err != nil {
		return nil, err
	}

	if r, err = need(secTopo); err != nil {
		return nil, err
	}
	if r.Bool() {
		if s.Topology, err = sta.UnpackTopology(r); err != nil {
			return nil, err
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}

	if r, err = need(secTrees); err != nil {
		return nil, err
	}
	if s.Trees, err = decodeTrees(r, len(s.Stack.Layers)); err != nil {
		return nil, err
	}
	return s, nil
}

// Save encodes the snapshot and writes it to path atomically (temp file in
// the same directory, fsync, rename), returning the byte count written.
func Save(path string, s *Snapshot) (int, error) {
	data, err := Encode(s)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pack-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Load reads and decodes a snapshot pack from path.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
