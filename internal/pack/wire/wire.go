// Package wire provides the low-level binary primitives the snapshot pack
// format is built from: an append-only Writer and a bounds-checked,
// sticky-error Reader over explicit little-endian fields, length-prefixed
// strings and raw numeric slabs.
//
// The Reader is designed to face hostile bytes (the pack decoder is a fuzz
// target): every read is bounds-checked, a failure poisons the reader so
// callers can decode whole structures and check Err once at the end, and
// every pre-allocation is capped by the number of bytes actually remaining
// in the input — a hostile length prefix can never make the decoder
// allocate more memory than the input it was handed.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates an encoded byte stream. The zero value is ready to
// use; Bytes returns the accumulated buffer.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded stream.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Raw appends bytes verbatim (pre-encoded section payloads).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its raw IEEE-754 bits, little-endian.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a u32 length prefix followed by the raw bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// I32Slab appends a u32 count followed by the values as raw little-endian
// 4-byte words — the bulk-copy layout the topology CSR arrays use.
func (w *Writer) I32Slab(vs []int32) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U32(uint32(v))
	}
}

// F64Slab appends a u32 count followed by raw little-endian float64 bits.
func (w *Writer) F64Slab(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// BoolSlab appends a u32 count followed by one byte per value.
func (w *Writer) BoolSlab(vs []bool) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.Bool(v)
	}
}

// Reader decodes a byte stream produced by Writer. The first failed read
// records an error and poisons the reader: every subsequent read returns a
// zero value without advancing, so decode functions can run straight-line
// and check Err once.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.pos }

// Done reports whether the input was consumed exactly, recording an error
// if trailing bytes remain.
func (r *Reader) Done() error {
	if r.err == nil && r.pos != len(r.data) {
		r.fail("trailing garbage: %d bytes after end of structure", len(r.data)-r.pos)
	}
	return r.err
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format+" at offset %d", append(args, r.pos)...)
	}
}

// take returns the next n bytes, or nil after poisoning the reader.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.pos {
		r.fail("truncated: need %d bytes, have %d", n, len(r.data)-r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean, failing on values other than 0 or 1.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from raw IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// count reads a u32 length prefix and validates it against the remaining
// input at elemSize bytes per element, so the caller can allocate exactly
// count elements without trusting the prefix.
func (r *Reader) count(elemSize int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(r.Remaining()) {
		r.fail("hostile length %d (x%d bytes) exceeds %d remaining", n, elemSize, r.Remaining())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// I32Slab reads a u32-counted slab of little-endian int32 values. The
// count is validated before allocation and the slab is taken in one bounds
// check — slab reads are the decoder's hot path.
func (r *Reader) I32Slab() []int32 {
	n := r.count(4)
	b := r.take(n * 4)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// F64Slab reads a u32-counted slab of raw float64 bits.
func (r *Reader) F64Slab() []float64 {
	n := r.count(8)
	b := r.take(n * 8)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// BoolSlab reads a u32-counted slab of booleans.
func (r *Reader) BoolSlab() []bool {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Count reads a u32 element count for caller-decoded sequences, capped by
// the remaining input at minElemSize bytes per element.
func (r *Reader) Count(minElemSize int) int {
	if minElemSize < 1 {
		minElemSize = 1
	}
	return r.count(minElemSize)
}
