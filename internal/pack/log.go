package pack

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"newgame/internal/pack/wire"
)

// LogMagic identifies an epoch log file.
const LogMagic = "NGEL"

// logVersion is the current log format version.
const logVersion = 1

const logHeaderSize = 4 + 2 // magic + version

// EpochOp mirrors one committed edit — the same shape timingd's /eco ops
// take on the wire (pack cannot import timingd, so it owns the type).
type EpochOp struct {
	Kind  string
	Cell  string
	Net   string
	Loads []string
	To    string
}

// EpochRecord is one committed epoch: the epoch number the commit produced
// and the op batch that was applied to reach it.
type EpochRecord struct {
	Epoch int64
	Ops   []EpochOp
}

// Log is an append-only epoch log open for writing. Each Append is one
// length-prefixed, CRC-framed record followed by an fsync, so a crash
// leaves at most one torn frame at the tail — which ReadLog detects and
// drops, never misreads.
//
// Frame layout after the {magic, version} header: u32 payload length,
// u32 CRC-32 of the payload, then the payload (epoch i64, op count u32,
// ops as length-prefixed strings).
type Log struct {
	f    *os.File
	path string
}

// OpenLog opens (creating if needed) the epoch log at path for appending.
// An empty file gets the header; an existing file must carry it.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var w wire.Writer
		w.Raw([]byte(LogMagic))
		w.U16(logVersion)
		if _, err := f.Write(w.Bytes()); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		hdr := make([]byte, logHeaderSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("pack: reading log header: %w", err)
		}
		if err := checkLogHeader(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Log{f: f, path: path}, nil
}

func checkLogHeader(hdr []byte) error {
	if len(hdr) < logHeaderSize || string(hdr[:4]) != LogMagic {
		return fmt.Errorf("pack: not an epoch log")
	}
	r := wire.NewReader(hdr[4:logHeaderSize])
	if v := r.U16(); v != logVersion {
		return fmt.Errorf("pack: unsupported log version %d (want %d)", v, logVersion)
	}
	return nil
}

// Append writes one committed epoch and syncs it to disk.
func (l *Log) Append(rec EpochRecord) error {
	payload := encodeEpochRecord(rec)
	var w wire.Writer
	w.U32(uint32(len(payload)))
	w.U32(crc32.ChecksumIEEE(payload))
	w.Raw(payload)
	if _, err := l.f.Write(w.Bytes()); err != nil {
		return err
	}
	return l.f.Sync()
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

func encodeEpochRecord(rec EpochRecord) []byte {
	var w wire.Writer
	w.I64(rec.Epoch)
	w.U32(uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		w.String(op.Kind)
		w.String(op.Cell)
		w.String(op.Net)
		w.U32(uint32(len(op.Loads)))
		for _, ld := range op.Loads {
			w.String(ld)
		}
		w.String(op.To)
	}
	return w.Bytes()
}

func decodeEpochRecord(payload []byte) (EpochRecord, error) {
	r := wire.NewReader(payload)
	rec := EpochRecord{Epoch: r.I64()}
	n := r.Count(17) // kind+cell+net+loads count+to prefixes
	if r.Err() != nil {
		return rec, r.Err()
	}
	rec.Ops = make([]EpochOp, 0, n)
	for i := 0; i < n; i++ {
		op := EpochOp{Kind: r.String(), Cell: r.String(), Net: r.String()}
		nl := r.Count(4)
		if r.Err() != nil {
			return rec, r.Err()
		}
		if nl > 0 {
			op.Loads = make([]string, 0, nl)
			for j := 0; j < nl; j++ {
				op.Loads = append(op.Loads, r.String())
			}
		}
		op.To = r.String()
		rec.Ops = append(rec.Ops, op)
	}
	return rec, r.Done()
}

// ReadLog reads every intact record from the log at path. A missing file is
// an empty log. A torn or corrupt tail (truncated frame, CRC mismatch — the
// signature of a crash mid-append) stops the read and sets truncated; the
// records before it are still returned. A CRC-valid record that fails to
// decode, or epochs out of order, are hard errors: the file is not a crash
// artifact but a corrupt or foreign log.
func ReadLog(path string) (recs []EpochRecord, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if err := checkLogHeader(data); err != nil {
		return nil, false, err
	}
	pos := logHeaderSize
	lastEpoch := int64(-1)
	for pos < len(data) {
		if len(data)-pos < 8 {
			return recs, true, nil
		}
		fr := wire.NewReader(data[pos : pos+8])
		length := int(fr.U32())
		crc := fr.U32()
		if length < 0 || length > len(data)-pos-8 {
			return recs, true, nil
		}
		payload := data[pos+8 : pos+8+length]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, true, nil
		}
		rec, err := decodeEpochRecord(payload)
		if err != nil {
			return nil, false, fmt.Errorf("pack: log record at offset %d: %w", pos, err)
		}
		if rec.Epoch <= lastEpoch {
			return nil, false, fmt.Errorf("pack: log epoch %d after %d at offset %d", rec.Epoch, lastEpoch, pos)
		}
		lastEpoch = rec.Epoch
		recs = append(recs, rec)
		pos += 8 + length
	}
	return recs, false, nil
}

// RewriteLog atomically replaces the log at path with exactly recs — used
// after a rewind or a torn-tail recovery, when the retained history must
// become the new truth before the log reopens for appends.
func RewriteLog(path string, recs []EpochRecord) error {
	var w wire.Writer
	w.Raw([]byte(LogMagic))
	w.U16(logVersion)
	for _, rec := range recs {
		payload := encodeEpochRecord(rec)
		w.U32(uint32(len(payload)))
		w.U32(crc32.ChecksumIEEE(payload))
		w.Raw(payload)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".log-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(w.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

var _ io.Closer = (*Log)(nil)
