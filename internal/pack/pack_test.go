package pack

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"newgame/internal/circuits"
	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// The fixture snapshot is a real (small) design analyzed by a real run, so
// the pack carries a genuine frozen topology and genuine synthesized trees.
var (
	fixOnce sync.Once
	fixSnap *Snapshot
)

func testSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	fixOnce.Do(func() {
		lib := liberty.Generate(liberty.Node16,
			liberty.PVT{Process: liberty.TT, Voltage: 0.8, Temp: 85}, liberty.GenOptions{})
		stack := parasitics.Stack16()
		d := circuits.Block(lib, circuits.BlockSpec{
			Name: "pk", Inputs: 6, Outputs: 6, FFs: 12, Gates: 120,
			MaxDepth: 7, Seed: 11, ClockBufferLevels: 1,
			VtMix: [3]float64{0, 0.5, 0.5},
		})
		cons := sta.NewConstraints()
		cons.AddClock("clk", 600, d.Port("clk"))
		binder := sta.NewKeyedNetBinder(stack, 11)
		a, err := sta.New(d, cons, sta.Config{Lib: lib, Parasitics: binder, Derate: sta.DefaultAOCV(), SI: sta.DefaultSI(), MIS: true})
		if err != nil {
			panic(err)
		}
		if err := a.Run(); err != nil {
			panic(err)
		}
		var trees []NetTree
		for _, n := range d.Nets {
			if tr := binder(n); tr != nil {
				trees = append(trees, NetTree{Net: n.Name, Need: len(tr.Sinks), Tree: tr})
			}
		}
		fixSnap = &Snapshot{
			Design: d,
			Recipe: &core.Recipe{
				Name: "pk_recipe",
				Scenarios: []core.Scenario{
					{
						Name: "setup_aocv", Lib: lib,
						Scaling:     stack.Corner(parasitics.CWorst, 3),
						PeriodScale: 1, Derate: sta.DefaultAOCV(),
						SI: sta.DefaultSI(), MIS: true,
						ForSetup: true, SetupUncertainty: 12,
					},
					{
						Name: "hold_flat", Lib: lib, // shared lib: exercises dedup
						Scaling:     stack.Corner(parasitics.CBest, 3),
						PeriodScale: 1, Derate: sta.DefaultFlatOCV(),
						ForHold: true, HoldUncertainty: 8,
					},
				},
				MaxIterations: 3, UsePBA: true, PBAEndpoints: 10,
				UseUsefulSkew: true, RecoverySlackFloor: 60,
			},
			Stack:        stack,
			ClockPort:    "clk",
			BasePeriod:   600,
			InputArrival: 20,
			Seed:         11,
			Epoch:        3,
			Topology:     a.Topology(),
			Trees:        trees,
		}
	})
	return fixSnap
}

// Encode → Decode → Encode must be byte-identical: the encoding is
// canonical (sorted cells, order-exact blueprint, first-seen lib order), so
// byte equality of the re-encode proves every decoded structure carries
// exactly the saved state.
func TestRoundTripByteStable(t *testing.T) {
	snap := testSnapshot(t)
	b1, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(b1), len(b2))
	}
	if dec.Epoch != snap.Epoch || dec.ClockPort != snap.ClockPort ||
		dec.BasePeriod != snap.BasePeriod || dec.InputArrival != snap.InputArrival || dec.Seed != snap.Seed {
		t.Fatalf("meta mismatch: %+v", dec)
	}
	if dec.Topology == nil {
		t.Fatal("topology not decoded")
	}
	if len(dec.Trees) != len(snap.Trees) {
		t.Fatalf("decoded %d trees, saved %d", len(dec.Trees), len(snap.Trees))
	}
	if !reflect.DeepEqual(dec.Design.Blueprint(), snap.Design.Blueprint()) {
		t.Fatal("decoded design blueprint differs")
	}
}

// A decoded topology must be adoptable by a fresh analyzer over the decoded
// design — the warm-start path — and the analyzer must keep the exact
// pointer (proof it skipped levelization rather than rebuilt).
func TestDecodedTopologyAdopted(t *testing.T) {
	snap := testSnapshot(t)
	b, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	cons := sta.NewConstraints()
	cons.AddClock("clk", units.Ps(600), dec.Design.Port("clk"))
	binder := sta.NewSnapshotNetBinder(dec.Stack, dec.Seed, dec.SavedTrees())
	a, err := sta.New(dec.Design, cons, sta.Config{
		Lib: dec.Recipe.Scenarios[0].Lib, Parasitics: binder,
		Derate: sta.DefaultAOCV(), SI: sta.DefaultSI(), MIS: true,
		Topology: dec.Topology,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology() != dec.Topology {
		t.Fatal("analyzer rebuilt the topology instead of adopting the decoded one")
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoad(t *testing.T) {
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "state.pack")
	n, err := Save(path, snap)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != st.Size() {
		t.Fatalf("Save reported %d bytes, file has %d", n, st.Size())
	}
	dec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != snap.Epoch {
		t.Fatalf("epoch %d != %d", dec.Epoch, snap.Epoch)
	}
}

// Every truncation of a valid pack must error cleanly.
func TestDecodeTruncations(t *testing.T) {
	b, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	step := len(b)/257 + 1
	for n := 0; n < len(b); n += step {
		if _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(b))
		}
	}
}

// Every single-bit flip must error: the header is fully validated and every
// section payload is CRC-checked, so there is no byte corruption can hide
// in.
func TestDecodeBitFlips(t *testing.T) {
	orig, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	step := len(orig)/331 + 1
	for i := 0; i < len(orig); i += step {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x10
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded without error", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NG"),
		[]byte("BOGUS-not-a-pack"),
		append([]byte("NGTP"), 0xFF, 0xFF, 0x00, 0x00), // absurd version
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("garbage %q decoded without error", c)
		}
	}
}
