package pack

import (
	"fmt"

	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/pack/wire"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// collectLibs deduplicates the recipe's corner libraries by pointer in
// first-seen scenario order: NewGoalPosts shares one library across several
// scenarios, and the pack stores each exactly once.
func collectLibs(rec *core.Recipe) ([]*liberty.Library, map[*liberty.Library]int, error) {
	var libs []*liberty.Library
	idx := map[*liberty.Library]int{}
	for i := range rec.Scenarios {
		l := rec.Scenarios[i].Lib
		if l == nil {
			return nil, nil, fmt.Errorf("pack: scenario %q has no library", rec.Scenarios[i].Name)
		}
		if _, ok := idx[l]; !ok {
			idx[l] = len(libs)
			libs = append(libs, l)
		}
	}
	return libs, idx, nil
}

func encodeRecipe(w *wire.Writer, rec *core.Recipe, libIdx map[*liberty.Library]int) error {
	w.String(rec.Name)
	w.U32(uint32(len(rec.Scenarios)))
	for i := range rec.Scenarios {
		sc := &rec.Scenarios[i]
		w.String(sc.Name)
		w.U32(uint32(libIdx[sc.Lib]))
		encodeScaling(w, sc.Scaling)
		w.F64(sc.PeriodScale)
		if err := encodeDerater(w, sc.Derate); err != nil {
			return fmt.Errorf("pack: scenario %q: %w", sc.Name, err)
		}
		w.Bool(sc.SI.Enabled)
		w.F64(sc.SI.SwitchingFraction)
		w.F64(sc.SI.NoiseThreshold)
		w.Bool(sc.MIS)
		w.Bool(sc.ForSetup)
		w.Bool(sc.ForHold)
		w.F64(float64(sc.SetupUncertainty))
		w.F64(float64(sc.HoldUncertainty))
		w.Bool(sc.DynamicIR)
	}
	w.I64(int64(rec.MaxIterations))
	w.Bool(rec.UsePBA)
	w.I64(int64(rec.PBAEndpoints))
	w.Bool(rec.UseUsefulSkew)
	w.Bool(rec.MinIAAware)
	w.Bool(rec.RecoverAfterClose)
	w.F64(float64(rec.RecoverySlackFloor))
	return nil
}

func decodeRecipe(r *wire.Reader, libs []*liberty.Library, nLayers int) (*core.Recipe, error) {
	rec := &core.Recipe{Name: r.String()}
	n := r.Count(8)
	if r.Err() != nil {
		return nil, r.Err()
	}
	rec.Scenarios = make([]core.Scenario, 0, n)
	for i := 0; i < n; i++ {
		var sc core.Scenario
		sc.Name = r.String()
		li := r.U32()
		if r.Err() == nil && int(li) >= len(libs) {
			return nil, fmt.Errorf("pack: scenario %q references library %d of %d", sc.Name, li, len(libs))
		}
		if r.Err() == nil {
			sc.Lib = libs[li]
		}
		scaling, err := decodeScaling(r, nLayers)
		if err != nil {
			return nil, err
		}
		sc.Scaling = scaling
		sc.PeriodScale = r.F64()
		if sc.Derate, err = decodeDerater(r); err != nil {
			return nil, fmt.Errorf("pack: scenario %q: %w", sc.Name, err)
		}
		sc.SI.Enabled = r.Bool()
		sc.SI.SwitchingFraction = r.F64()
		sc.SI.NoiseThreshold = r.F64()
		sc.MIS = r.Bool()
		sc.ForSetup = r.Bool()
		sc.ForHold = r.Bool()
		sc.SetupUncertainty = units.Ps(r.F64())
		sc.HoldUncertainty = units.Ps(r.F64())
		sc.DynamicIR = r.Bool()
		rec.Scenarios = append(rec.Scenarios, sc)
	}
	rec.MaxIterations = int(r.I64())
	rec.UsePBA = r.Bool()
	rec.PBAEndpoints = int(r.I64())
	rec.UseUsefulSkew = r.Bool()
	rec.MinIAAware = r.Bool()
	rec.RecoverAfterClose = r.Bool()
	rec.RecoverySlackFloor = units.Ps(r.F64())
	if err := r.Done(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Derater wire tags. The Derater field is an interface; the pack stores a
// tagged union over the concrete OCV models the engine ships.
const (
	derateNil  = 255
	derateNone = 0
	derateFlat = 1
	derateAOCV = 2
	deratePOCV = 3
	derateLVF  = 4
)

func encodeDerater(w *wire.Writer, d sta.Derater) error {
	switch v := d.(type) {
	case nil:
		w.U8(derateNil)
	case sta.NoDerate:
		w.U8(derateNone)
	case sta.FlatOCV:
		w.U8(derateFlat)
		w.F64(v.CellLate)
		w.F64(v.CellEarly)
		w.F64(v.NetLate)
		w.F64(v.NetEarly)
	case sta.AOCV:
		w.U8(derateAOCV)
		w.F64Slab(v.LateByDepth)
		w.F64Slab(v.EarlyByDepth)
		w.F64(v.NetLate)
		w.F64(v.NetEarly)
	case sta.POCV:
		w.U8(deratePOCV)
		w.F64(v.SigmaFrac)
		w.F64(v.N)
	case sta.LVF:
		w.U8(derateLVF)
		w.F64(v.N)
		w.F64(v.Fallback)
	default:
		return fmt.Errorf("unsupported derater type %T", d)
	}
	return nil
}

func decodeDerater(r *wire.Reader) (sta.Derater, error) {
	switch tag := r.U8(); tag {
	case derateNil:
		return nil, r.Err()
	case derateNone:
		return sta.NoDerate{}, r.Err()
	case derateFlat:
		var v sta.FlatOCV
		v.CellLate = r.F64()
		v.CellEarly = r.F64()
		v.NetLate = r.F64()
		v.NetEarly = r.F64()
		return v, r.Err()
	case derateAOCV:
		var v sta.AOCV
		v.LateByDepth = r.F64Slab()
		v.EarlyByDepth = r.F64Slab()
		v.NetLate = r.F64()
		v.NetEarly = r.F64()
		if r.Err() == nil && (len(v.LateByDepth) == 0 || len(v.EarlyByDepth) == 0) {
			return nil, fmt.Errorf("empty AOCV depth table")
		}
		return v, r.Err()
	case deratePOCV:
		var v sta.POCV
		v.SigmaFrac = r.F64()
		v.N = r.F64()
		return v, r.Err()
	case derateLVF:
		var v sta.LVF
		v.N = r.F64()
		v.Fallback = r.F64()
		return v, r.Err()
	default:
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("unknown derater tag %d", tag)
	}
}
