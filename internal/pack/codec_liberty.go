package pack

import (
	"fmt"
	"sort"

	"newgame/internal/liberty"
	"newgame/internal/pack/wire"
	"newgame/internal/units"
)

// encodeLibs writes the deduplicated library list. Order is the first-seen
// scenario order computed by collectLibs, so re-encoding a decoded snapshot
// is byte-stable.
func encodeLibs(w *wire.Writer, libs []*liberty.Library) error {
	w.U32(uint32(len(libs)))
	for _, l := range libs {
		if err := encodeLibrary(w, l); err != nil {
			return err
		}
	}
	return nil
}

func decodeLibs(r *wire.Reader) ([]*liberty.Library, error) {
	n := r.Count(8)
	if r.Err() != nil {
		return nil, r.Err()
	}
	libs := make([]*liberty.Library, 0, n)
	for i := 0; i < n; i++ {
		l, err := decodeLibrary(r)
		if err != nil {
			return nil, err
		}
		libs = append(libs, l)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return libs, nil
}

func encodeLibrary(w *wire.Writer, l *liberty.Library) error {
	w.String(l.Name)
	t := l.Tech
	w.String(t.Name)
	for _, v := range []float64{
		float64(t.VDDNominal), float64(t.Vt0), float64(t.VtStep), t.Alpha,
		t.KDrive, t.MobilityExp, t.VtTempCoeff, float64(t.CinUnit),
		float64(t.CparUnit), t.AreaUnit, float64(t.LeakUnit), t.LeakVtFactor,
		t.SlewDerate,
	} {
		w.F64(v)
	}
	p := l.PVT
	w.String(p.Process.Name)
	w.F64(p.Process.DriveFactor)
	w.F64(float64(p.Process.VtShift))
	w.F64(p.Process.RiseFallSkew)
	w.F64(float64(p.Voltage))
	w.F64(float64(p.Temp))
	// Cells go out sorted by name: the map is unordered and a stable
	// encoding keeps save→load→save byte-identical.
	cells := l.Cells()
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	w.U32(uint32(len(names)))
	for _, name := range names {
		encodeCell(w, cells[name])
	}
	return nil
}

func decodeLibrary(r *wire.Reader) (*liberty.Library, error) {
	name := r.String()
	var t liberty.TechParams
	t.Name = r.String()
	t.VDDNominal = units.Volt(r.F64())
	t.Vt0 = units.Volt(r.F64())
	t.VtStep = units.Volt(r.F64())
	t.Alpha = r.F64()
	t.KDrive = r.F64()
	t.MobilityExp = r.F64()
	t.VtTempCoeff = r.F64()
	t.CinUnit = units.FF(r.F64())
	t.CparUnit = units.FF(r.F64())
	t.AreaUnit = r.F64()
	t.LeakUnit = units.NW(r.F64())
	t.LeakVtFactor = r.F64()
	t.SlewDerate = r.F64()
	var p liberty.PVT
	p.Process.Name = r.String()
	p.Process.DriveFactor = r.F64()
	p.Process.VtShift = units.Volt(r.F64())
	p.Process.RiseFallSkew = r.F64()
	p.Voltage = units.Volt(r.F64())
	p.Temp = units.Celsius(r.F64())
	nCells := r.Count(8)
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Rebuilding via NewLibrary+Add reconstructs the per-function drive
	// ladders exactly as the original registration did.
	l := liberty.NewLibrary(name, t, p)
	for i := 0; i < nCells; i++ {
		c, err := decodeCell(r)
		if err != nil {
			return nil, err
		}
		if l.Cell(c.Name) != nil {
			return nil, fmt.Errorf("pack: library %q has duplicate cell %q", name, c.Name)
		}
		l.Add(c)
	}
	return l, r.Err()
}

func encodeCell(w *wire.Writer, c *liberty.Cell) {
	w.String(c.Name)
	w.String(c.Function)
	w.F64(c.Drive)
	w.U8(uint8(c.Vt))
	w.F64(c.Area)
	w.F64(float64(c.Leakage))
	w.F64(float64(c.MaxTran))
	w.U32(uint32(len(c.Pins)))
	for _, p := range c.Pins {
		w.String(p.Name)
		w.Bool(p.Input)
		w.F64(float64(p.Cap))
		w.Bool(p.IsClock)
		w.F64(float64(p.MaxCap))
	}
	w.U32(uint32(len(c.Arcs)))
	for i := range c.Arcs {
		encodeArc(w, &c.Arcs[i])
	}
	w.Bool(c.FF != nil)
	if c.FF != nil {
		w.String(c.FF.Clock)
		w.String(c.FF.Data)
		w.String(c.FF.Q)
		for _, t := range []*liberty.Table2D{
			c.FF.SetupRise, c.FF.SetupFall, c.FF.HoldRise, c.FF.HoldFall,
			c.FF.C2QRise, c.FF.C2QFall,
		} {
			encodeTable(w, t)
		}
	}
	w.Bool(c.Gate != nil)
	if c.Gate != nil {
		w.String(c.Gate.Clock)
		w.String(c.Gate.Enable)
		w.String(c.Gate.Out)
		encodeTable(w, c.Gate.SetupRise)
		encodeTable(w, c.Gate.HoldRise)
	}
}

func decodeCell(r *wire.Reader) (*liberty.Cell, error) {
	c := &liberty.Cell{Name: r.String(), Function: r.String(), Drive: r.F64()}
	vt := r.U8()
	if r.Err() == nil && vt > uint8(liberty.HVT) {
		return nil, fmt.Errorf("pack: cell %q has unknown Vt class %d", c.Name, vt)
	}
	c.Vt = liberty.VtClass(vt)
	c.Area = r.F64()
	c.Leakage = units.NW(r.F64())
	c.MaxTran = units.Ps(r.F64())
	nPins := r.Count(15)
	if r.Err() != nil {
		return nil, r.Err()
	}
	c.Pins = make([]liberty.PinSpec, 0, nPins)
	for i := 0; i < nPins; i++ {
		p := liberty.PinSpec{Name: r.String(), Input: r.Bool()}
		p.Cap = units.FF(r.F64())
		p.IsClock = r.Bool()
		p.MaxCap = units.FF(r.F64())
		c.Pins = append(c.Pins, p)
	}
	nArcs := r.Count(12)
	if r.Err() != nil {
		return nil, r.Err()
	}
	c.Arcs = make([]liberty.TimingArc, 0, nArcs)
	for i := 0; i < nArcs; i++ {
		a, err := decodeArc(r)
		if err != nil {
			return nil, err
		}
		c.Arcs = append(c.Arcs, a)
	}
	if r.Bool() {
		ff := &liberty.FFSpec{Clock: r.String(), Data: r.String(), Q: r.String()}
		for _, dst := range []**liberty.Table2D{
			&ff.SetupRise, &ff.SetupFall, &ff.HoldRise, &ff.HoldFall,
			&ff.C2QRise, &ff.C2QFall,
		} {
			t, err := decodeTable(r)
			if err != nil {
				return nil, err
			}
			*dst = t
		}
		c.FF = ff
	}
	if r.Bool() {
		g := &liberty.GatingSpec{Clock: r.String(), Enable: r.String(), Out: r.String()}
		var err error
		if g.SetupRise, err = decodeTable(r); err != nil {
			return nil, err
		}
		if g.HoldRise, err = decodeTable(r); err != nil {
			return nil, err
		}
		c.Gate = g
	}
	return c, r.Err()
}

// arcTables enumerates a TimingArc's table slots in their fixed wire order.
func arcTables(a *liberty.TimingArc) []**liberty.Table2D {
	return []**liberty.Table2D{
		&a.DelayRise, &a.DelayFall, &a.SlewRise, &a.SlewFall,
		&a.SigmaRise, &a.SigmaFall,
		&a.SigmaEarlyRise, &a.SigmaEarlyFall,
		&a.SigmaLateRise, &a.SigmaLateFall,
	}
}

func encodeArc(w *wire.Writer, a *liberty.TimingArc) {
	w.String(a.From)
	w.String(a.To)
	w.U8(uint8(a.Sense))
	for _, t := range arcTables(a) {
		encodeTable(w, *t)
	}
	w.F64(a.MISFactorFast)
	w.F64(a.MISFactorSlow)
}

func decodeArc(r *wire.Reader) (liberty.TimingArc, error) {
	var a liberty.TimingArc
	a.From = r.String()
	a.To = r.String()
	sense := r.U8()
	if r.Err() == nil && sense > uint8(liberty.NonUnate) {
		return a, fmt.Errorf("pack: arc %s->%s has unknown sense %d", a.From, a.To, sense)
	}
	a.Sense = liberty.ArcSense(sense)
	for _, dst := range arcTables(&a) {
		t, err := decodeTable(r)
		if err != nil {
			return a, err
		}
		*dst = t
	}
	a.MISFactorFast = r.F64()
	a.MISFactorSlow = r.F64()
	return a, r.Err()
}

// encodeTable writes an optional Table2D: a presence flag, the two axes,
// then the values row-major as one flat slab.
func encodeTable(w *wire.Writer, t *liberty.Table2D) {
	w.Bool(t != nil)
	if t == nil {
		return
	}
	w.F64Slab(t.RowAxis)
	w.F64Slab(t.ColAxis)
	w.U32(uint32(len(t.RowAxis) * len(t.ColAxis)))
	for _, row := range t.Values {
		for _, v := range row {
			w.F64(v)
		}
	}
}

func decodeTable(r *wire.Reader) (*liberty.Table2D, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	t := &liberty.Table2D{RowAxis: r.F64Slab(), ColAxis: r.F64Slab()}
	flat := r.F64Slab()
	if err := r.Err(); err != nil {
		return nil, err
	}
	rows, cols := len(t.RowAxis), len(t.ColAxis)
	// Lookup indexes the axes unconditionally, so an empty table is as
	// hostile as a mis-sized one.
	if rows == 0 || cols == 0 || len(flat) != rows*cols {
		return nil, fmt.Errorf("pack: table %dx%d with %d values", rows, cols, len(flat))
	}
	t.Values = make([][]float64, rows)
	for i := 0; i < rows; i++ {
		t.Values[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return t, nil
}
