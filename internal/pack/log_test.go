package pack

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []EpochRecord {
	return []EpochRecord{
		{Epoch: 1, Ops: []EpochOp{{Kind: "resize", Cell: "u1", To: "INV_X2_LVT"}}},
		{Epoch: 2, Ops: []EpochOp{
			{Kind: "buffer", Net: "n42", Loads: []string{"u7/A", "u9/B"}, To: "BUF_X1_SVT"},
			{Kind: "resize", Cell: "u3", To: "NAND2_X1_HVT"},
		}},
		{Epoch: 3, Ops: []EpochOp{{Kind: "resize", Cell: "u5", To: "INV_X1_SVT"}}},
	}
}

func writeLog(t *testing.T, path string, recs []EpochRecord) {
	t.Helper()
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.log")
	want := testRecords()
	writeLog(t, path, want)
	got, truncated, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("clean log reported truncated")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("read back %+v, want %+v", got, want)
	}
}

func TestLogMissingFile(t *testing.T) {
	recs, truncated, err := ReadLog(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || truncated || recs != nil {
		t.Fatalf("missing file: got %v, %v, %v; want nil, false, nil", recs, truncated, err)
	}
}

// Reopening an existing log and appending must continue the same stream.
func TestLogReopenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.log")
	want := testRecords()
	writeLog(t, path, want[:2])
	writeLog(t, path, want[2:])
	got, truncated, err := ReadLog(path)
	if err != nil || truncated {
		t.Fatalf("err=%v truncated=%v", err, truncated)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("read back %+v, want %+v", got, want)
	}
}

// A torn final frame — the crash case — must surface the intact prefix with
// the truncated flag, not an error.
func TestLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.log")
	want := testRecords()
	writeLog(t, path, want)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= 9; cut += 4 {
		if err := os.WriteFile(path, b[:len(b)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, truncated, err := ReadLog(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !truncated {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if !reflect.DeepEqual(got, want[:2]) {
			t.Fatalf("cut %d: got %+v, want first two records", cut, got)
		}
	}
}

// A corrupted byte mid-stream stops reading at the bad frame: prefix +
// truncated, same as a torn tail. (The caller then rewrites the log, so the
// poisoned suffix never resurrects.)
func TestLogCRCCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.log")
	want := testRecords()
	writeLog(t, path, want)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40 // inside the last frame's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, truncated, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("corrupt frame not reported as truncation")
	}
	if !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("got %+v, want first two records", got)
	}
}

// CRC-valid frames with non-increasing epochs mean the file is not a log we
// wrote — hard error, not a salvage.
func TestLogEpochOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.log")
	writeLog(t, path, []EpochRecord{
		{Epoch: 1, Ops: []EpochOp{{Kind: "resize", Cell: "a", To: "X"}}},
	})
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(EpochRecord{Epoch: 1, Ops: []EpochOp{{Kind: "resize", Cell: "b", To: "Y"}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, _, err := ReadLog(path); err == nil {
		t.Fatal("duplicate epoch read without error")
	}
}

func TestLogBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.log")
	if err := os.WriteFile(path, []byte("NOTALOG!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadLog(path); err == nil {
		t.Fatal("bad header read without error")
	}
	if _, err := OpenLog(path); err == nil {
		t.Fatal("OpenLog accepted a foreign file")
	}
}

func TestRewriteLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.log")
	want := testRecords()
	writeLog(t, path, want)
	if err := RewriteLog(path, want[:1]); err != nil {
		t.Fatal(err)
	}
	got, truncated, err := ReadLog(path)
	if err != nil || truncated {
		t.Fatalf("err=%v truncated=%v", err, truncated)
	}
	if !reflect.DeepEqual(got, want[:1]) {
		t.Fatalf("got %+v, want first record only", got)
	}
	// A rewritten log must accept further appends where it left off.
	writeLog(t, path, want[1:2])
	got, _, err = ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("after re-append: got %+v, want first two records", got)
	}
}
