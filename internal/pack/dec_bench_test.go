package pack

import "testing"

func BenchmarkDecodeFixture(b *testing.B) {
	data, err := Encode(testSnapshot(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
