package ir

import (
	"testing"

	"newgame/internal/circuits"
	"newgame/internal/liberty"
	"newgame/internal/place"
	"newgame/internal/sta"
)

func setup(t *testing.T) (*place.Placement, *liberty.Library) {
	t.Helper()
	lib := liberty.Generate(liberty.Node16,
		liberty.PVT{Process: liberty.SSG, Voltage: 0.72, Temp: 125}, liberty.GenOptions{})
	d := circuits.Block(lib, circuits.BlockSpec{
		Name: "ir", Inputs: 12, Outputs: 12, FFs: 48, Gates: 700,
		Seed: 55, ClockBufferLevels: 2,
	})
	p, err := place.New(d, lib, 400, 55)
	if err != nil {
		t.Fatal(err)
	}
	return p, lib
}

func TestDroopBasics(t *testing.T) {
	p, lib := setup(t)
	an := Run(p, lib, DefaultConfig())
	if an.MaxDroop <= 0 {
		t.Fatal("no droop computed")
	}
	if an.MaxDroop >= lib.PVT.Voltage/2 {
		t.Errorf("max droop %v implausibly large", an.MaxDroop)
	}
	if an.MeanDroop <= 0 || an.MeanDroop >= an.MaxDroop {
		t.Errorf("mean droop %v vs max %v inconsistent", an.MeanDroop, an.MaxDroop)
	}
}

func TestDroopScalesWithActivity(t *testing.T) {
	p, lib := setup(t)
	lo := DefaultConfig()
	lo.Activity = 0.05
	hi := DefaultConfig()
	hi.Activity = 0.30
	if Run(p, lib, hi).MaxDroop <= Run(p, lib, lo).MaxDroop {
		t.Error("droop should grow with activity")
	}
}

func TestDroopMidSpanWorst(t *testing.T) {
	p, lib := setup(t)
	an := Run(p, lib, DefaultConfig())
	// Cells near a strap (x ≈ k·pitch) should droop less than mid-span
	// cells in the same row. Compare extremes within row 0.
	cells := p.RowCells(0)
	if len(cells) < 8 {
		t.Skip("row too short")
	}
	var nearStrap, midSpan *float64
	for _, c := range cells {
		loc := p.Loc(c)
		x := (float64(loc.Site) + float64(loc.Width)/2) * p.SiteWidth
		span := DefaultConfig().StrapPitch
		xs := x - span*float64(int(x/span))
		d := an.Droop(c)
		if xs < span*0.1 || xs > span*0.9 {
			nearStrap = &d
		}
		if xs > span*0.4 && xs < span*0.6 {
			midSpan = &d
		}
	}
	if nearStrap == nil || midSpan == nil {
		t.Skip("no suitable cells at both positions")
	}
	if *midSpan <= *nearStrap {
		t.Errorf("mid-span droop (%v) should exceed near-strap (%v)", *midSpan, *nearStrap)
	}
}

func TestIRDerateSlowsSetupTiming(t *testing.T) {
	p, lib := setup(t)
	an := Run(p, lib, DefaultConfig())
	d := p.D
	run := func(withIR bool) float64 {
		cons := sta.NewConstraints()
		cons.AddClock("clk", 700, d.Port("clk"))
		cfg := sta.Config{Lib: lib}
		if withIR {
			cfg.CellDerate = an.DerateFn()
		}
		a, err := sta.New(d, cons, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		return a.WorstSlack(sta.Setup)
	}
	off := run(false)
	on := run(true)
	if on >= off {
		t.Errorf("dynamic IR should reduce setup slack: %v -> %v", off, on)
	}
	// Hold must not get optimistic credit from droop.
	runHold := func(withIR bool) float64 {
		cons := sta.NewConstraints()
		cons.AddClock("clk", 700, d.Port("clk"))
		cfg := sta.Config{Lib: lib}
		if withIR {
			cfg.CellDerate = an.DerateFn()
		}
		a, err := sta.New(d, cons, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Run(); err != nil {
			t.Fatal(err)
		}
		return a.WorstSlack(sta.Hold)
	}
	if runHold(true) > runHold(false)+1e-9 {
		t.Error("droop derate credited to early/hold analysis")
	}
}

func TestDerateFnBounds(t *testing.T) {
	p, lib := setup(t)
	an := Run(p, lib, DefaultConfig())
	fn := an.DerateFn()
	for _, c := range p.D.Cells {
		f := fn(c)
		if f < 1 || f > 4 {
			t.Fatalf("derate %v out of [1,4] for %s", f, c.Name)
		}
	}
}
