// Package ir implements dynamic IR-drop analysis: activity-driven supply
// droop across the placed rows, converted into per-cell delay derates that
// the STA engine consumes (paper §4 Comment 1: signoff STA tools offer
// "comprehension of dynamic IR effects ('-dynamic' analysis options)";
// Figure 2 lists dynamic IR among the NEW goal posts).
//
// The grid model: each placement row is a resistive rail fed from power
// straps at both ends. Cells draw switching current proportional to their
// load and activity; for a (piecewise) uniform current density J and rail
// resistance r per micron, the droop at position x along a span of length
// L fed from both ends is J·r·x(L−x)/2 — maximal mid-span.
package ir

import (
	"math"

	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/place"
	"newgame/internal/units"
)

// Config sets the grid and activity model.
type Config struct {
	// RailRes is the rail resistance per micron of row, kΩ/µm (mΩ-class in
	// kΩ units).
	RailRes units.KOhm
	// StrapPitch is the distance between power straps along the row, µm;
	// each span between straps is fed from both ends.
	StrapPitch units.Um
	// Activity is the average switching activity (transitions per cycle).
	Activity float64
	// FreqGHz converts switched charge to current.
	FreqGHz float64
	// SimultaneityFactor models the dynamic (di/dt) peak over the average
	// current — the "dynamic" in dynamic IR.
	SimultaneityFactor float64
}

// DefaultConfig is a GHz-class digital block with straps every 50 µm.
func DefaultConfig() Config {
	return Config{
		RailRes: 0.0006, StrapPitch: 50, Activity: 0.15,
		FreqGHz: 1.0, SimultaneityFactor: 3,
	}
}

// Analysis holds the computed droop map.
type Analysis struct {
	cfg Config
	lib *liberty.Library
	// Droop per cell, volts.
	droop map[*netlist.Cell]units.Volt
	// MaxDroop and the average.
	MaxDroop, MeanDroop units.Volt
}

// cellCurrent estimates a cell's average switching current, mA: dynamic
// C·V·f·activity plus leakage.
func cellCurrent(lib *liberty.Library, c *netlist.Cell, cfg Config) float64 {
	m := lib.Cell(c.TypeName)
	if m == nil {
		return 0
	}
	// Switched cap: own parasitic plus the input caps it drives.
	sw := lib.Tech.CparUnit * m.Drive
	if out := c.Output(); out != nil && out.Net != nil {
		for _, l := range out.Net.Loads {
			sw += lib.Cell(l.Cell.TypeName).InputCap(l.Name)
		}
	}
	// fF · V · GHz = mA·10^-3... in this unit system fF·V/ns = µA, so
	// divide by 1000 for mA.
	dyn := sw * lib.PVT.Voltage * cfg.FreqGHz * cfg.Activity / 1000
	leak := m.Leakage * 1e-6 / math.Max(lib.PVT.Voltage, 0.1) // nW/V = nA → mA
	return dyn*cfg.SimultaneityFactor + leak
}

// Run computes the droop map for a placed design.
func Run(p *place.Placement, lib *liberty.Library, cfg Config) *Analysis {
	an := &Analysis{cfg: cfg, lib: lib, droop: map[*netlist.Cell]units.Volt{}}
	var sum float64
	var n int
	for row := 0; row < p.Rows(); row++ {
		cells := p.RowCells(row)
		if len(cells) == 0 {
			continue
		}
		// Row span and per-span uniform current density.
		var rowLen float64
		var rowCur float64
		for _, c := range cells {
			loc := p.Loc(c)
			end := (float64(loc.Site) + float64(loc.Width)) * p.SiteWidth
			if end > rowLen {
				rowLen = end
			}
			rowCur += cellCurrent(lib, c, cfg)
		}
		if rowLen <= 0 {
			continue
		}
		j := rowCur / rowLen // mA per µm
		for _, c := range cells {
			loc := p.Loc(c)
			x := (float64(loc.Site) + float64(loc.Width)/2) * p.SiteWidth
			// Position within the strap span.
			span := cfg.StrapPitch
			xs := math.Mod(x, span)
			d := j * cfg.RailRes * xs * (span - xs) / 2
			an.droop[c] = d
			sum += d
			n++
			if d > an.MaxDroop {
				an.MaxDroop = d
			}
		}
	}
	if n > 0 {
		an.MeanDroop = sum / float64(n)
	}
	return an
}

// Droop returns a cell's supply droop, V.
func (an *Analysis) Droop(c *netlist.Cell) units.Volt { return an.droop[c] }

// DerateFn returns the per-cell delay factor for sta.Config.CellDerate:
// the device-model slowdown of running at V − droop instead of V.
func (an *Analysis) DerateFn() func(*netlist.Cell) float64 {
	lib := an.lib
	base := map[liberty.VtClass]float64{}
	for _, vt := range liberty.VtClasses {
		base[vt] = lib.Tech.Req(vt, 1, lib.PVT)
	}
	return func(c *netlist.Cell) float64 {
		d, ok := an.droop[c]
		if !ok || d <= 0 {
			return 1
		}
		m := lib.Cell(c.TypeName)
		if m == nil {
			return 1
		}
		pvt := lib.PVT
		pvt.Voltage -= d
		r := lib.Tech.Req(m.Vt, 1, pvt)
		b := base[m.Vt]
		if math.IsInf(r, 1) || b <= 0 {
			return 4 // device nearly off: cap the derate
		}
		f := r / b
		if f > 4 {
			f = 4
		}
		return f
	}
}
