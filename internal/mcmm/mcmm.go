// Package mcmm manages multi-corner multi-mode signoff: the cross product
// of functional/test modes with PVT and BEOL extraction corners that a
// complex SOC must close timing at. It models the "corner super-explosion"
// of paper §2.3 — modes × voltages × temperatures × BEOL corners × multi-
// patterned-layer mask shifts — and provides dominance-based pruning, the
// practical mitigation the paper notes ("the central engineering team that
// chooses a subset of PVT corners … has enormous influence").
package mcmm

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"newgame/internal/liberty"
	"newgame/internal/obs"
	"newgame/internal/parasitics"
	"newgame/internal/units"
)

// Mode is a functional or test operating mode with its own constraints.
type Mode struct {
	Name string
	// Kind distinguishes functional from test modes.
	Kind ModeKind
	// PeriodScale scales the base clock period in this mode (scan shift
	// typically runs much slower).
	PeriodScale float64
}

// ModeKind classifies modes.
type ModeKind int

const (
	Functional ModeKind = iota
	ScanShift
	ScanCapture
	BIST
)

func (k ModeKind) String() string {
	switch k {
	case Functional:
		return "func"
	case ScanShift:
		return "scan_shift"
	case ScanCapture:
		return "scan_capture"
	default:
		return "bist"
	}
}

// PVTCorner is a FEOL process/voltage/temperature point.
type PVTCorner struct {
	Name    string
	Process liberty.ProcessCorner
	Voltage units.Volt
	Temp    units.Celsius
	// ForSetup/ForHold mark which checks the corner is used for.
	ForSetup, ForHold bool
}

// Scenario is one signoff view: mode × PVT corner × BEOL corner.
type Scenario struct {
	Mode Mode
	PVT  PVTCorner
	BEOL parasitics.CornerKind
	// MaskShift indexes the multi-patterning mask-shift combination for
	// double-patterned layers (0 = nominal assignment).
	MaskShift int
}

// Name renders the canonical scenario name.
func (s Scenario) Name() string {
	n := fmt.Sprintf("%s/%s/%s", s.Mode.Name, s.PVT.Name, s.BEOL)
	if s.MaskShift > 0 {
		n += fmt.Sprintf("/mp%d", s.MaskShift)
	}
	return n
}

// Space describes the full signoff space before any pruning.
type Space struct {
	Modes []Mode
	PVTs  []PVTCorner
	BEOLs []parasitics.CornerKind
	// MaskShiftCombos is the number of multi-patterning shift combinations
	// per BEOL corner (2^(multi-patterned layers), 1 to disable).
	MaskShiftCombos int
}

// Enumerate expands the full scenario cross product — the corner
// super-explosion, before engineering judgment cuts it down.
func (sp Space) Enumerate() []Scenario {
	if sp.MaskShiftCombos < 1 {
		sp.MaskShiftCombos = 1
	}
	var out []Scenario
	for _, m := range sp.Modes {
		for _, p := range sp.PVTs {
			for _, b := range sp.BEOLs {
				for ms := 0; ms < sp.MaskShiftCombos; ms++ {
					out = append(out, Scenario{Mode: m, PVT: p, BEOL: b, MaskShift: ms})
				}
			}
		}
	}
	return out
}

// Count returns the scenario count without materializing them.
func (sp Space) Count() int {
	ms := sp.MaskShiftCombos
	if ms < 1 {
		ms = 1
	}
	return len(sp.Modes) * len(sp.PVTs) * len(sp.BEOLs) * ms
}

// VoltageTempGrid builds PVT corners for the given voltages and
// temperatures at the slow and fast global process corners — the pattern
// behind wide-voltage-range FinFET signoff (paper §1.2: supplies scaled
// "across a range of 0.46V to 1.25V"). Because of temperature inversion
// (paper Fig 6b), both temperature extremes are emitted per voltage when
// the voltage is near the inversion point.
func VoltageTempGrid(volts []units.Volt, temps []units.Celsius) []PVTCorner {
	var out []PVTCorner
	for _, v := range volts {
		for _, t := range temps {
			out = append(out,
				PVTCorner{
					Name:    fmt.Sprintf("SSG_%.2fV_%.0fC", v, t),
					Process: liberty.SSG, Voltage: v, Temp: t,
					ForSetup: true, ForHold: false,
				},
				PVTCorner{
					Name:    fmt.Sprintf("FFG_%.2fV_%.0fC", v, t),
					Process: liberty.FFG, Voltage: v, Temp: t,
					ForSetup: false, ForHold: true,
				})
		}
	}
	return out
}

// DefaultModes is a representative SOC mode set.
func DefaultModes() []Mode {
	return []Mode{
		{Name: "func_nominal", Kind: Functional, PeriodScale: 1},
		{Name: "func_overdrive", Kind: Functional, PeriodScale: 0.8},
		{Name: "func_underdrive", Kind: Functional, PeriodScale: 1.6},
		{Name: "scan_shift", Kind: ScanShift, PeriodScale: 4},
		{Name: "scan_capture", Kind: ScanCapture, PeriodScale: 1.2},
		{Name: "bist", Kind: BIST, PeriodScale: 1},
	}
}

// ScenarioResult couples a scenario with its analysis outcome for pruning
// and merged reporting.
type ScenarioResult struct {
	Scenario Scenario
	SetupWNS units.Ps
	HoldWNS  units.Ps
	// SetupCritCells/HoldCritCells identify worst-path cells (by name) for
	// cross-scenario fix planning.
	SetupCritCells []string
	HoldCritCells  []string
}

// Sweep evaluates every scenario with eval across a bounded worker pool
// and returns the results in input order regardless of completion order —
// the determinism rule of the concurrent signoff engine. workers == 0
// means one per available CPU; workers == 1 forces serial evaluation.
// eval must be safe for concurrent calls (per-corner analyses are
// independent units of work; any shared state belongs behind the caller's
// own synchronization).
func Sweep(scenarios []Scenario, workers int, eval func(idx int, s Scenario) ScenarioResult) []ScenarioResult {
	return SweepObs(nil, nil, scenarios, workers, eval)
}

// SweepObs is Sweep with observability: each scenario evaluation gets a
// span on its worker's trace track (parented under parent, e.g. a survey
// or experiment span) and bumps that worker's occupancy counter, so the
// exported trace shows how the corner sweep actually packed the pool. A
// nil rec records nothing and costs almost nothing.
func SweepObs(rec *obs.Recorder, parent *obs.Span, scenarios []Scenario, workers int, eval func(idx int, s Scenario) ScenarioResult) []ScenarioResult {
	out := make([]ScenarioResult, len(scenarios))
	evalOne := func(i, g int) {
		sp := rec.Start("scenario:"+scenarios[i].Name(), parent).OnTrack(g + 1)
		out[i] = eval(i, scenarios[i])
		sp.End()
		if rec != nil {
			rec.Counter(fmt.Sprintf("mcmm.worker_%02d.scenarios", g)).Add(1)
		}
	}
	w := workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(scenarios) {
		w = len(scenarios)
	}
	if w <= 1 {
		for i := range scenarios {
			evalOne(i, 0)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range next {
				evalOne(i, g)
			}
		}(g)
	}
	for i := range scenarios {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// SweepCtx is Sweep with cancellation: when ctx is done the dispatcher
// stops handing out scenarios, waits for the in-flight evaluations to
// finish (eval itself decides whether to observe ctx internally), and
// returns nil results with ctx's error. A completed sweep returns results
// identical to Sweep — input order, any worker count.
func SweepCtx(ctx context.Context, scenarios []Scenario, workers int, eval func(idx int, s Scenario) ScenarioResult) ([]ScenarioResult, error) {
	out := make([]ScenarioResult, len(scenarios))
	w := workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(scenarios) {
		w = len(scenarios)
	}
	if w <= 1 {
		for i := range scenarios {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = eval(i, scenarios[i])
		}
		return out, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = eval(i, scenarios[i])
			}
		}()
	}
	var err error
dispatch:
	for i := range scenarios {
		select {
		case next <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MergedWNS reports the worst setup and hold WNS across scenarios — the
// number a closure loop drives to zero.
func MergedWNS(rs []ScenarioResult) (setup, hold units.Ps) {
	setup, hold = 0, 0
	for _, r := range rs {
		if r.SetupWNS < setup {
			setup = r.SetupWNS
		}
		if r.HoldWNS < hold {
			hold = r.HoldWNS
		}
	}
	return setup, hold
}

// PruneDominated removes scenarios whose timing is provably covered by a
// retained scenario, using per-scenario WNS observations from a calibration
// analysis run: scenario A dominates B for setup when A's setup WNS is
// lower (worse) by at least margin and they share mode kind. This is the
// observational dominance tools and teams actually use (a full proof of
// dominance is impossible — "pruning of corners is difficult!", paper §2.3
// footnote 10).
func PruneDominated(rs []ScenarioResult, margin units.Ps) (keep, pruned []ScenarioResult) {
	// Sort worst-first by setup WNS so dominators come early.
	sorted := append([]ScenarioResult(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].SetupWNS+sorted[i].HoldWNS < sorted[j].SetupWNS+sorted[j].HoldWNS
	})
	for _, r := range sorted {
		dominated := false
		for _, k := range keep {
			if k.Scenario.Mode.Kind != r.Scenario.Mode.Kind {
				continue
			}
			if k.SetupWNS <= r.SetupWNS-margin && k.HoldWNS <= r.HoldWNS-margin {
				dominated = true
				break
			}
		}
		if dominated {
			pruned = append(pruned, r)
		} else {
			keep = append(keep, r)
		}
	}
	return keep, pruned
}
