package mcmm

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"newgame/internal/obs"
	"newgame/internal/parasitics"
)

func space(nVolts, nTemps int, maskCombos int) Space {
	volts := make([]float64, nVolts)
	for i := range volts {
		volts[i] = 0.5 + 0.1*float64(i)
	}
	temps := make([]float64, nTemps)
	for i := range temps {
		temps[i] = -30 + 155*float64(i)/float64(max(1, nTemps-1))
	}
	return Space{
		Modes:           DefaultModes(),
		PVTs:            VoltageTempGrid(volts, temps),
		BEOLs:           append([]parasitics.CornerKind{parasitics.Typical}, parasitics.AllCorners...),
		MaskShiftCombos: maskCombos,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestEnumerateMatchesCount(t *testing.T) {
	sp := space(3, 2, 2)
	got := sp.Enumerate()
	if len(got) != sp.Count() {
		t.Fatalf("Enumerate len %d != Count %d", len(got), sp.Count())
	}
	// 6 modes × (3V × 2T × 2 proc) × 7 BEOL × 2 shifts = 1008.
	if want := 6 * 12 * 7 * 2; len(got) != want {
		t.Errorf("scenario count = %d, want %d", len(got), want)
	}
	// Names unique.
	seen := map[string]bool{}
	for _, s := range got {
		n := s.Name()
		if seen[n] {
			t.Fatalf("duplicate scenario name %q", n)
		}
		seen[n] = true
	}
}

func TestExplosionGrowsMultiplicatively(t *testing.T) {
	// The corner super-explosion: adding one double-patterned layer doubles
	// the count; adding a voltage adds a full slab.
	base := space(2, 2, 1).Count()
	moreMP := space(2, 2, 2).Count()
	moreV := space(3, 2, 1).Count()
	if moreMP != 2*base {
		t.Errorf("mask-shift doubling: %d -> %d", base, moreMP)
	}
	if moreV != base*3/2 {
		t.Errorf("voltage slab: %d -> %d", base, moreV)
	}
}

func TestVoltageTempGridSetupHoldSplit(t *testing.T) {
	grid := VoltageTempGrid([]float64{0.6}, []float64{-30, 125})
	if len(grid) != 4 {
		t.Fatalf("grid size = %d, want 4", len(grid))
	}
	for _, c := range grid {
		if strings.HasPrefix(c.Name, "SSG") && (!c.ForSetup || c.ForHold) {
			t.Errorf("SSG corner flags wrong: %+v", c)
		}
		if strings.HasPrefix(c.Name, "FFG") && (c.ForSetup || !c.ForHold) {
			t.Errorf("FFG corner flags wrong: %+v", c)
		}
	}
}

func TestMergedWNS(t *testing.T) {
	rs := []ScenarioResult{
		{SetupWNS: -50, HoldWNS: 0},
		{SetupWNS: -10, HoldWNS: -20},
		{SetupWNS: 0, HoldWNS: 0},
	}
	s, h := MergedWNS(rs)
	if s != -50 || h != -20 {
		t.Errorf("merged = (%v, %v), want (-50, -20)", s, h)
	}
	s, h = MergedWNS(nil)
	if s != 0 || h != 0 {
		t.Errorf("empty merge = (%v, %v)", s, h)
	}
}

func TestPruneDominated(t *testing.T) {
	mkr := func(mode Mode, setup, hold float64) ScenarioResult {
		return ScenarioResult{
			Scenario: Scenario{Mode: mode, PVT: PVTCorner{Name: "p"}, BEOL: parasitics.CWorst},
			SetupWNS: setup, HoldWNS: hold,
		}
	}
	fn := Mode{Name: "f", Kind: Functional}
	scan := Mode{Name: "s", Kind: ScanShift}
	rs := []ScenarioResult{
		mkr(fn, -100, -10), // dominator
		mkr(fn, -40, -1),   // dominated in both checks by > margin
		mkr(fn, -99, -9),   // within margin of dominator: kept
		mkr(scan, -10, 0),  // different mode kind: kept
	}
	keep, pruned := PruneDominated(rs, 5)
	if len(keep) != 3 || len(pruned) != 1 {
		t.Fatalf("keep %d pruned %d, want 3/1", len(keep), len(pruned))
	}
	if pruned[0].SetupWNS != -40 {
		t.Errorf("wrong scenario pruned: %+v", pruned[0].Scenario)
	}
	// The kept set must still realize the merged WNS.
	s0, h0 := MergedWNS(rs)
	s1, h1 := MergedWNS(keep)
	if s0 != s1 || h0 != h1 {
		t.Errorf("pruning changed merged WNS: (%v,%v) vs (%v,%v)", s0, h0, s1, h1)
	}
}

func TestModeKindStrings(t *testing.T) {
	for _, m := range DefaultModes() {
		if m.Kind.String() == "" || m.PeriodScale <= 0 {
			t.Errorf("bad mode %+v", m)
		}
	}
}

// Sweep must return results in input order at any worker count, and the
// concurrent evaluation must agree with serial exactly.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	sp := space(4, 3, 2)
	sp.Modes = DefaultModes()
	scenarios := sp.Enumerate()
	eval := func(idx int, s Scenario) ScenarioResult {
		// Depend on both index and scenario so misordered results or a
		// scenario/slot mismatch is caught.
		return ScenarioResult{
			Scenario: s,
			SetupWNS: -float64(idx) - (1.0-s.PVT.Voltage)*100,
			HoldWNS:  -s.PVT.Temp / 8,
		}
	}
	serial := Sweep(scenarios, 1, eval)
	if len(serial) != len(scenarios) {
		t.Fatalf("got %d results, want %d", len(serial), len(scenarios))
	}
	for i, r := range serial {
		if r.Scenario != scenarios[i] {
			t.Fatalf("result %d holds scenario %v, want input order", i, r.Scenario)
		}
	}
	for _, workers := range []int{0, 2, 8} {
		par := Sweep(scenarios, workers, eval)
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d: results differ from serial", workers)
		}
	}
}

// SweepObs records one span and one worker-counter bump per scenario
// evaluation without changing the results, and stays nil-safe when the
// recorder is absent.
func TestSweepObsRecordsWithoutPerturbing(t *testing.T) {
	sp := space(3, 2, 1)
	sp.Modes = DefaultModes()[:2]
	scenarios := sp.Enumerate()
	eval := func(idx int, s Scenario) ScenarioResult {
		return ScenarioResult{Scenario: s, SetupWNS: -float64(idx), HoldWNS: -1}
	}
	bare := Sweep(scenarios, 1, eval)
	rec := obs.NewRecorder()
	parent := rec.Start("sweep", nil)
	got := SweepObs(rec, parent, scenarios, 3, eval)
	parent.End()
	if !reflect.DeepEqual(got, bare) {
		t.Fatal("recorded sweep differs from bare sweep")
	}
	var b bytes.Buffer
	if err := rec.WriteMetricsJSON(&b); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Counters map[string]int64 `json:"counters"`
		Spans    map[string]struct {
			Count int `json:"count"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(b.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	spans, counted := 0, int64(0)
	for name, st := range d.Spans {
		if strings.HasPrefix(name, "scenario:") {
			spans += st.Count
		}
	}
	for name, v := range d.Counters {
		if strings.HasPrefix(name, "mcmm.worker_") {
			counted += v
		}
	}
	if spans != len(scenarios) || counted != int64(len(scenarios)) {
		t.Fatalf("recorded %d spans / %d counter bumps, want %d scenarios",
			spans, counted, len(scenarios))
	}
}

// SweepCtx with a live context matches Sweep exactly; a context canceled
// mid-sweep stops dispatch and reports the error with nil results.
func TestSweepCtx(t *testing.T) {
	sp := space(4, 3, 2)
	sp.Modes = DefaultModes()
	scenarios := sp.Enumerate()
	eval := func(idx int, s Scenario) ScenarioResult {
		return ScenarioResult{Scenario: s, SetupWNS: -float64(idx), HoldWNS: -1}
	}
	want := Sweep(scenarios, 1, eval)
	for _, workers := range []int{1, 4} {
		got, err := SweepCtx(context.Background(), scenarios, workers, eval)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: SweepCtx differs from Sweep", workers)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		got, err := SweepCtx(ctx, scenarios, workers, eval)
		if err == nil {
			t.Fatalf("workers=%d: canceled sweep returned nil error", workers)
		}
		if got != nil {
			t.Fatalf("workers=%d: canceled sweep returned partial results", workers)
		}
	}
}
