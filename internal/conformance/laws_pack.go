package conformance

import (
	"fmt"

	"newgame/internal/core"
	"newgame/internal/pack"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// checkPackRoundTrip is the persistence law: serializing the complete
// resident state — design, library, parasitic trees, frozen topology —
// through the binary pack and rebuilding an analyzer from nothing but the
// decoded bytes must reproduce the live analyzer's observable timing
// state bit-for-bit. This is what makes timingd's -restore trustworthy:
// a warm-started server is indistinguishable from the one that saved the
// pack.
func checkPackRoundTrip(cx *Ctx) error {
	period := units.Ps(cx.Spec.Period)
	binder := sta.NewNetBinder(cx.Stack, cx.Spec.Seed)
	a1, err := sta.New(cx.Design, cx.Cons, sta.Config{
		Lib: cx.Lib, Parasitics: binder,
		SI: sta.DefaultSI(), Derate: sta.DefaultAOCV(), MIS: true,
	})
	if err != nil {
		return err
	}
	if err := a1.Run(); err != nil {
		return err
	}
	want := Fingerprint(a1)

	var trees []pack.NetTree
	for _, n := range cx.Design.Nets {
		if t := binder(n); t != nil {
			trees = append(trees, pack.NetTree{Net: n.Name, Need: len(t.Sinks), Tree: t})
		}
	}
	snap := &pack.Snapshot{
		Design: cx.Design,
		Recipe: &core.Recipe{
			Name: "conformance",
			Scenarios: []core.Scenario{{
				Name: "full", Lib: cx.Lib, PeriodScale: 1,
				SI: sta.DefaultSI(), Derate: sta.DefaultAOCV(), MIS: true,
				ForSetup: true, ForHold: true,
			}},
		},
		Stack:      cx.Stack,
		ClockPort:  "clk",
		BasePeriod: period,
		Seed:       cx.Spec.Seed,
		Topology:   a1.Topology(),
		Trees:      trees,
	}
	data, err := pack.Encode(snap)
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	dec, err := pack.Decode(data)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}

	// The rebuild uses only decoded state: decoded design, decoded
	// library, saved trees, adopted topology. Constraints are rebuilt the
	// same way any boot would rebuild them.
	cons2 := cx.constraintsFor(dec.Design, period)
	a2, err := sta.New(dec.Design, cons2, sta.Config{
		Lib:        dec.Recipe.Scenarios[0].Lib,
		Parasitics: sta.NewSnapshotNetBinder(dec.Stack, dec.Seed, dec.SavedTrees()),
		SI:         sta.DefaultSI(), Derate: sta.DefaultAOCV(), MIS: true,
		Topology: dec.Topology,
	})
	if err != nil {
		return fmt.Errorf("rebuild from decoded pack: %w", err)
	}
	if a2.Topology() != dec.Topology {
		return fmt.Errorf("decoded topology not adopted: analyzer re-levelized instead")
	}
	if err := a2.Run(); err != nil {
		return err
	}
	if got := Fingerprint(a2); got != want {
		return fmt.Errorf("state fingerprint changed across pack round-trip: live %s, restored %s", want[:16], got[:16])
	}
	return nil
}
