package conformance

import (
	"fmt"
	"reflect"
	"sync"

	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/mcmm"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// checkMCMMMerge: merged MCMM reporting is pure aggregation — the merged
// WNS is exactly the min over scenario WNS (clamped at zero: a design
// with no violations reports zero, not its positive margin), the merged
// TNS is exactly the sum, and the sweep's results are identical at every
// worker count (the corner super-explosion of paper §2.3 is only
// manageable if fanning scenarios out cannot change the answer).
func checkMCMMMerge(cx *Ctx) error {
	// Three scenario views over the same design: the base period, a tight
	// mode and a relaxed mode — enough spread that min/sum aggregation
	// has real structure to get wrong.
	scales := []float64{1.0, 0.82, 1.3}
	space := mcmm.Space{
		Modes: mcmm.DefaultModes()[:1],
		PVTs:  []mcmm.PVTCorner{{Voltage: 0.8, Temp: 85}},
		BEOLs: []parasitics.CornerKind{parasitics.Typical, parasitics.CWorst, parasitics.CBest},
	}
	scenarios := space.Enumerate()
	if len(scenarios) != len(scales) {
		return fmt.Errorf("scenario space enumerated %d views, want %d", len(scenarios), len(scales))
	}
	var mu sync.Mutex
	wnsErrs := make([]error, len(scenarios))
	eval := func(idx int, s mcmm.Scenario) mcmm.ScenarioResult {
		cons := cx.constraintsFor(cx.Design, units.Ps(cx.Spec.Period*scales[idx]))
		a, err := sta.New(cx.Design, cons, cx.fullCfg(1))
		if err == nil {
			err = a.Run()
		}
		if err != nil {
			mu.Lock()
			wnsErrs[idx] = err
			mu.Unlock()
			return mcmm.ScenarioResult{Scenario: s}
		}
		// Per-scenario aggregate consistency: the WNS/TNS the scenario
		// reports must be exactly re-derivable from its endpoint list
		// (min clamped at 0; sum of each endpoint's worst violation, in
		// the same worst-first order, so equality is byte-exact).
		mu.Lock()
		wnsErrs[idx] = checkAggregates(a)
		mu.Unlock()
		return mcmm.ScenarioResult{Scenario: s, SetupWNS: a.WNS(sta.Setup), HoldWNS: a.WNS(sta.Hold)}
	}
	serial := mcmm.Sweep(scenarios, 1, eval)
	for i, err := range wnsErrs {
		if err != nil {
			return fmt.Errorf("scenario %d (%s): %v", i, scenarios[i].Name(), err)
		}
	}
	par := mcmm.Sweep(scenarios, 4, eval)
	if !reflect.DeepEqual(serial, par) {
		return fmt.Errorf("mcmm.Sweep results differ between workers=1 and workers=4")
	}

	wantSetup, wantHold := units.Ps(0), units.Ps(0)
	for _, r := range serial {
		if r.SetupWNS < wantSetup {
			wantSetup = r.SetupWNS
		}
		if r.HoldWNS < wantHold {
			wantHold = r.HoldWNS
		}
	}
	gotSetup, gotHold := mcmm.MergedWNS(serial)
	if gotSetup != wantSetup || gotHold != wantHold {
		return fmt.Errorf("MergedWNS = (%v, %v), want min-over-scenarios (%v, %v)",
			gotSetup, gotHold, wantSetup, wantHold)
	}
	return nil
}

// checkAggregates re-derives WNS (min over endpoints, clamped at 0) and
// TNS (sum of each endpoint's worst violation) from the endpoint list
// and demands byte-exact agreement with the analyzer's own aggregates.
func checkAggregates(a *sta.Analyzer) error {
	for _, kind := range []sta.CheckKind{sta.Setup, sta.Hold} {
		eps := a.EndpointSlacks(kind)
		wantWNS := units.Ps(0)
		var wantTNS units.Ps
		seen := map[string]bool{}
		for _, e := range eps {
			if e.Slack < wantWNS {
				wantWNS = e.Slack
			}
			if !seen[e.Name()] {
				seen[e.Name()] = true
				if e.Slack < 0 {
					wantTNS += e.Slack
				}
			}
		}
		if len(eps) == 0 {
			continue
		}
		if got := a.WNS(kind); got != wantWNS {
			return fmt.Errorf("%v WNS %v is not the clamped endpoint min %v", kind, got, wantWNS)
		}
		if got := a.TNS(kind); got != wantTNS {
			return fmt.Errorf("%v TNS %v is not the per-endpoint violation sum %v", kind, got, wantTNS)
		}
	}
	return nil
}

// surveyFixture memoizes the (expensive) two-corner recipe + design the
// per-run survey determinism law uses.
var surveyRecipe *core.Recipe

// checkSurveyWorkers: the closure engine's survey is the consumer of
// mcmm.Sweep — its merged WNS and per-scenario breakdown must be
// identical at every worker count, since fix planning branches on them.
func checkSurveyWorkers(cx *Ctx) error {
	if surveyRecipe == nil {
		r := core.OldGoalPosts(liberty.Node16, cx.Stack)
		surveyRecipe = &r
	}
	spec := SpecFor(mix(777, 0))
	var its []core.Iteration
	for _, workers := range []int{1, 4} {
		d := spec.Build(surveyRecipe.Scenarios[0].Lib)
		e := &core.Engine{
			D: d, Recipe: *surveyRecipe, BasePeriod: units.Ps(spec.Period),
			ClockPort:  d.Port("clk"),
			Parasitics: sta.NewNetBinder(cx.Stack, spec.Seed),
			Workers:    workers,
		}
		it, err := e.Survey()
		if err != nil {
			return fmt.Errorf("survey workers=%d: %v", workers, err)
		}
		its = append(its, it)
	}
	if !reflect.DeepEqual(its[0], its[1]) {
		return fmt.Errorf("survey differs between workers=1 and workers=4:\n  %+v\n  %+v", its[0], its[1])
	}
	return nil
}
