package conformance

import (
	"bytes"
	"fmt"
	"sort"

	"newgame/internal/liberty"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// tol absorbs the float noise of re-deriving the same quantity along a
// different computation path (path re-propagation vs graph propagation);
// laws that compare identical computations use byte equality instead.
const tol = 1e-6

// checkCRPR: clock reconvergence pessimism removal is a credit — it can
// only improve slack, never hurt it (paper §2.1: removing pessimism a
// real chip never exhibits). Two clauses: the credit is nonnegative at
// every endpoint under the stressed view, and under a view where early
// and late clock analyses coincide (no derate, no SI, no MIS) there is
// no pessimism to reclaim, so the credit is exactly zero.
func checkCRPR(cx *Ctx) error {
	a, err := cx.Base()
	if err != nil {
		return err
	}
	for _, e := range sortedEndpoints(a) {
		if e.CRPR < 0 {
			return fmt.Errorf("negative CRPR credit %v at %s (kind %v)", e.CRPR, e.Name(), e.Kind)
		}
	}
	flat, err := sta.New(cx.Design, cx.Cons, sta.Config{
		Lib:        cx.Lib,
		Parasitics: sta.NewNetBinder(cx.Stack, cx.Spec.Seed),
		Derate:     sta.NoDerate{},
		Workers:    1,
	})
	if err != nil {
		return err
	}
	if err := flat.Run(); err != nil {
		return err
	}
	for _, e := range sortedEndpoints(flat) {
		if e.CRPR != 0 {
			return fmt.Errorf("CRPR credit %v at %s without early/late divergence; want exactly 0", e.CRPR, e.Name())
		}
	}
	return nil
}

// checkPBARefinesGBA: graph-based analysis merges the worst slew into
// every vertex, so a path re-timed with its own slews can only get
// faster on late analysis (and only later on early analysis) — PBA slack
// must be at least the GBA slack it refines, for setup and hold alike
// (paper §3.2: "PBA … removes pessimism one path at a time").
func checkPBARefinesGBA(cx *Ctx) error {
	a, err := cx.Base()
	if err != nil {
		return err
	}
	for _, kind := range []sta.CheckKind{sta.Setup, sta.Hold} {
		for _, p := range a.WorstPaths(kind, 10) {
			r := a.PBA(p)
			if float64(r.Slack) < float64(p.GBASlack)-tol {
				return fmt.Errorf("PBA degraded %v slack at %s: GBA %v → PBA %v (pessimism %v)",
					kind, p.Endpoint.Name(), p.GBASlack, r.Slack, r.Pessimism)
			}
		}
	}
	return nil
}

// checkKWorst: the k-worst path report is a ranking — it must be sorted
// worst-first, deduplicated per endpoint, and asking for more paths must
// never reorder the ones already reported (prefix stability is what lets
// an ECO loop fix the top-k and trust the list didn't shift under it).
// The slack-window variant must return only paths inside the window.
func checkKWorst(cx *Ctx) error {
	a, err := cx.Base()
	if err != nil {
		return err
	}
	for _, kind := range []sta.CheckKind{sta.Setup, sta.Hold} {
		ks := []int{1, 3, 8, 20}
		lists := make([][]sta.Path, len(ks))
		for i, k := range ks {
			lists[i] = a.WorstPaths(kind, k)
			if len(lists[i]) > k {
				return fmt.Errorf("WorstPaths(%v,%d) returned %d paths", kind, k, len(lists[i]))
			}
			if !sort.SliceIsSorted(lists[i], func(x, y int) bool {
				return lists[i][x].GBASlack < lists[i][y].GBASlack
			}) {
				return fmt.Errorf("WorstPaths(%v,%d) not sorted worst-first", kind, k)
			}
			seen := map[string]bool{}
			for _, p := range lists[i] {
				name := p.Endpoint.Name()
				if seen[name] {
					return fmt.Errorf("WorstPaths(%v,%d) repeats endpoint %s", kind, k, name)
				}
				seen[name] = true
			}
		}
		for i := 1; i < len(lists); i++ {
			small, big := lists[i-1], lists[i]
			if len(small) > len(big) {
				return fmt.Errorf("WorstPaths(%v) shrank from k=%d to k=%d", kind, ks[i-1], ks[i])
			}
			for j := range small {
				if small[j].Endpoint.Name() != big[j].Endpoint.Name() ||
					small[j].GBASlack != big[j].GBASlack {
					return fmt.Errorf("WorstPaths(%v) not prefix-stable at rank %d: k=%d gives %s (%v), k=%d gives %s (%v)",
						kind, j, ks[i-1], small[j].Endpoint.Name(), small[j].GBASlack,
						ks[i], big[j].Endpoint.Name(), big[j].GBASlack)
				}
			}
		}
	}
	eps := a.EndpointSlacks(sta.Setup)
	if len(eps) == 0 {
		return nil
	}
	e := eps[0]
	window := units.Ps(60)
	paths := a.PathsWithin(e, window, 64)
	if len(paths) == 0 {
		return fmt.Errorf("PathsWithin(%s) found no paths, not even the worst one", e.Name())
	}
	if !sort.SliceIsSorted(paths, func(x, y int) bool { return paths[x].GBASlack < paths[y].GBASlack }) {
		return fmt.Errorf("PathsWithin(%s) not sorted worst-first", e.Name())
	}
	for _, p := range paths {
		if float64(p.GBASlack) < float64(e.Slack)-tol || float64(p.GBASlack) > float64(e.Slack+window)+tol {
			return fmt.Errorf("PathsWithin(%s, window %v) returned slack %v outside [%v, %v]",
				e.Name(), window, p.GBASlack, e.Slack, e.Slack+window)
		}
	}
	return nil
}

// checkSlackLinearInPeriod: with single-cycle checks, relaxing the clock
// period by Δ moves every setup required time by exactly Δ while data
// and clock arrivals stay put, so every setup slack shifts by exactly Δ;
// hold compares same-edge launch/capture and must not move at all. This
// is the symbolic-STA linearity law (arXiv 2510.15907) the repo's
// property tests spot-check on one design; here it is quantified over
// the distribution and over every endpoint.
func checkSlackLinearInPeriod(cx *Ctx) error {
	a, err := cx.Base()
	if err != nil {
		return err
	}
	const delta = 60
	cons2 := cx.constraintsFor(cx.Design, units.Ps(cx.Spec.Period+delta))
	a2, err := sta.New(cx.Design, cons2, cx.fullCfg(1))
	if err != nil {
		return err
	}
	if err := a2.Run(); err != nil {
		return err
	}
	for _, kind := range []sta.CheckKind{sta.Setup, sta.Hold} {
		base := a.EndpointSlacks(kind)
		relaxed := a2.EndpointSlacks(kind)
		if len(base) != len(relaxed) {
			return fmt.Errorf("%v endpoint count changed with period: %d → %d", kind, len(base), len(relaxed))
		}
		byKey := map[string]sta.EndpointSlack{}
		for _, e := range relaxed {
			byKey[endpointKey(e)] = e
		}
		for _, e := range base {
			r, ok := byKey[endpointKey(e)]
			if !ok {
				return fmt.Errorf("%v endpoint %s disappeared when period relaxed", kind, e.Name())
			}
			shift := float64(r.Slack - e.Slack)
			want := 0.0
			if kind == sta.Setup {
				want = delta
			}
			if shift < want-tol || shift > want+tol {
				return fmt.Errorf("%v slack at %s shifted %v for a %dps period change; want %v",
					kind, e.Name(), shift, delta, want)
			}
		}
	}
	return nil
}

// checkSTASerialParallel: the level-parallel engine's contract is
// bit-identical results at every worker count — each vertex is computed
// by exactly one goroutine from finalized earlier levels, so there is no
// legal ordering effect to observe. Compared by full state fingerprint.
func checkSTASerialParallel(cx *Ctx) error {
	serial, err := cx.Base()
	if err != nil {
		return err
	}
	par, err := sta.New(cx.Design, cx.Cons, cx.fullCfg(4))
	if err != nil {
		return err
	}
	if err := par.Run(); err != nil {
		return err
	}
	if fs, fp := Fingerprint(serial), Fingerprint(par); fs != fp {
		return fmt.Errorf("workers=1 and workers=4 fingerprints differ: %s vs %s", fs[:16], fp[:16])
	}
	return nil
}

// checkDelayMonotone: NLDM characterization must produce physically
// sensible tables — a larger output load or a slower input edge cannot
// make a gate faster, and the same holds for the output slew tables
// (paper §2.1 grounds delay models in this physics; a non-monotone table
// is a characterization bug that silently corrupts every analysis built
// on it). Checked at every grid point of every arc of every cell.
func checkDelayMonotone(cx *Ctx) error {
	names := make([]string, 0, len(cx.Lib.Cells()))
	for name := range cx.Lib.Cells() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cx.Lib.Cell(name)
		for ai := range c.Arcs {
			arc := &c.Arcs[ai]
			for _, tb := range []struct {
				label string
				t     *liberty.Table2D
			}{
				{"delay_rise", arc.DelayRise}, {"delay_fall", arc.DelayFall},
				{"slew_rise", arc.SlewRise}, {"slew_fall", arc.SlewFall},
			} {
				if tb.t == nil {
					continue
				}
				if err := tableMonotone(tb.t); err != nil {
					return fmt.Errorf("%s arc %s→%s %s: %v", name, arc.From, arc.To, tb.label, err)
				}
			}
		}
	}
	return nil
}

func tableMonotone(t *liberty.Table2D) error {
	for i, row := range t.Values {
		for j := 1; j < len(row); j++ {
			if row[j] < row[j-1] {
				return fmt.Errorf("decreasing in load at slew %v: %v fF → %v, %v fF → %v",
					t.RowAxis[i], t.ColAxis[j-1], row[j-1], t.ColAxis[j], row[j])
			}
		}
	}
	for i := 1; i < len(t.Values); i++ {
		for j := range t.Values[i] {
			if t.Values[i][j] < t.Values[i-1][j] {
				return fmt.Errorf("decreasing in slew at load %v: %v ps → %v, %v ps → %v",
					t.ColAxis[j], t.RowAxis[i-1], t.Values[i-1][j], t.RowAxis[i], t.Values[i][j])
			}
		}
	}
	return nil
}

// checkLibgenWorkers: library characterization fans cell jobs across a
// pool but assembles serially in job order; the emitted .lib must be
// byte-identical at any worker count.
func checkLibgenWorkers(cx *Ctx) error {
	pvt := liberty.PVT{Process: liberty.TT, Voltage: 0.8, Temp: 85}
	serial := liberty.Generate(liberty.Node16, pvt, liberty.GenOptions{Workers: 1})
	par := liberty.Generate(liberty.Node16, pvt, liberty.GenOptions{Workers: 4})
	var bs, bp bytes.Buffer
	if err := liberty.WriteLib(&bs, serial); err != nil {
		return err
	}
	if err := liberty.WriteLib(&bp, par); err != nil {
		return err
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		return fmt.Errorf("serial and parallel characterization differ: %d vs %d bytes", bs.Len(), bp.Len())
	}
	return nil
}
