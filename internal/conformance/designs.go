package conformance

import (
	"math/rand"

	"newgame/internal/circuits"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
)

// DesignSpec is the serializable recipe for one random conformance
// design: everything a reproducer needs to rebuild the exact netlist and
// constraints. It mirrors the circuits.BlockSpec fields the lab varies.
type DesignSpec struct {
	Seed              int64   `json:"seed"`
	Inputs            int     `json:"inputs"`
	Outputs           int     `json:"outputs"`
	FFs               int     `json:"ffs"`
	Gates             int     `json:"gates"`
	MaxDepth          int     `json:"max_depth"`
	ClockBufferLevels int     `json:"clock_buffer_levels"`
	ClockGating       bool    `json:"clock_gating"`
	Period            float64 `json:"period_ps"`
}

// SpecFor draws one design point from the lab's distribution: small
// enough that a 25-design sweep stays within the CI budget, varied
// enough to cover flat and buffered clock trees, clock gating, and
// periods from clearly-violating to clearly-met.
func SpecFor(seed int64) DesignSpec {
	rng := rand.New(rand.NewSource(seed))
	s := DesignSpec{
		Seed:              seed,
		Inputs:            4 + rng.Intn(8),
		Outputs:           4 + rng.Intn(8),
		FFs:               8 + rng.Intn(25),
		Gates:             80 + rng.Intn(220),
		MaxDepth:          4 + rng.Intn(7),
		ClockBufferLevels: rng.Intn(3),
		ClockGating:       rng.Intn(4) == 0,
		Period:            450 + float64(rng.Intn(400)),
	}
	return s
}

// Build synthesizes the netlist for this spec.
func (s DesignSpec) Build(lib *liberty.Library) *netlist.Design {
	return circuits.Block(lib, circuits.BlockSpec{
		Name:              "conform",
		Inputs:            s.Inputs,
		Outputs:           s.Outputs,
		FFs:               s.FFs,
		Gates:             s.Gates,
		MaxDepth:          s.MaxDepth,
		Seed:              s.Seed,
		ClockBufferLevels: s.ClockBufferLevels,
		ClockGating:       s.ClockGating,
		VtMix:             [3]float64{0.2, 0.5, 0.3},
	})
}
