package conformance

import (
	"fmt"

	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/sta"
)

// EditOp is one resize step of an edit script: retype a named cell to a
// different master of the same function. It is the serializable unit of
// a reproducer.
type EditOp struct {
	Cell string `json:"cell"`
	To   string `json:"to"`
}

// checkIncrementalMatchesFull: incremental re-timing exists so an ECO
// loop doesn't pay a full analysis per trial fix, but the contract is
// absolute — after any edit script, Update must land on bit-identical
// state to a from-scratch Run on the edited netlist (the repo's existing
// property test, quantified over random designs and scripts). Updates
// are interleaved mid-script so partially-updated state is also covered.
func checkIncrementalMatchesFull(cx *Ctx) error {
	// The script mutates the netlist; work on a clone so the Ctx design
	// (and the cached base analyzer) stay valid for other laws.
	d := cx.Design.Clone()
	cons := cx.constraintsFor(d, cx.Cons.Clocks[0].Period)
	inc, err := sta.New(d, cons, cx.fullCfg(1))
	if err != nil {
		return err
	}
	if err := inc.Run(); err != nil {
		return err
	}
	script := cx.ForcedEdits
	if script == nil {
		script = randomEditScript(cx, d)
	}
	cx.AppliedEdits = script
	for i, op := range script {
		c := d.Cell(op.Cell)
		if c == nil {
			return fmt.Errorf("edit %d: no cell %q in design", i, op.Cell)
		}
		c.SetType(op.To)
		inc.InvalidateCell(c)
		// Exercise mid-script updates, not just one batched catch-up.
		if i%3 == 2 {
			if err := inc.Update(); err != nil {
				return fmt.Errorf("edit %d: incremental update: %v", i, err)
			}
		}
	}
	if err := inc.Update(); err != nil {
		return err
	}
	full, err := sta.New(d, cons, cx.fullCfg(1))
	if err != nil {
		return err
	}
	if err := full.Run(); err != nil {
		return err
	}
	if fi, ff := Fingerprint(inc), Fingerprint(full); fi != ff {
		return fmt.Errorf("incremental state diverged from full Run after %d edits: %s vs %s",
			len(script), fi[:16], ff[:16])
	}
	return nil
}

// randomEditScript draws cx.Edits resize ops: random cells retyped to a
// random different drive/Vt variant of the same function. Cells may be
// edited more than once — an ECO loop revisits cells too.
func randomEditScript(cx *Ctx, d *netlist.Design) []EditOp {
	var candidates []int
	for i, c := range d.Cells {
		master := cx.Lib.Cell(c.TypeName)
		if master == nil || len(variantsOf(cx.Lib, master)) < 2 {
			continue
		}
		candidates = append(candidates, i)
	}
	if len(candidates) == 0 {
		return nil
	}
	script := make([]EditOp, 0, cx.Edits)
	for len(script) < cx.Edits {
		c := d.Cells[candidates[cx.rng.Intn(len(candidates))]]
		vs := variantsOf(cx.Lib, cx.Lib.Cell(c.TypeName))
		to := vs[cx.rng.Intn(len(vs))]
		if to == c.TypeName {
			continue
		}
		c.SetType(to) // track the running type so chained edits stay distinct
		script = append(script, EditOp{Cell: c.Name, To: to})
	}
	// The script was simulated on the clone while being drawn; rewind the
	// clone so the caller applies it from the original state.
	for i := len(script) - 1; i >= 0; i-- {
		prev := cx.Design.Cell(script[i].Cell).TypeName
		for j := i - 1; j >= 0; j-- {
			if script[j].Cell == script[i].Cell {
				prev = script[j].To
				break
			}
		}
		d.Cell(script[i].Cell).SetType(prev)
	}
	return script
}

// variantsOf lists every master name sharing the cell's function (all
// drives × all Vt classes present in the library).
func variantsOf(lib *liberty.Library, master *liberty.Cell) []string {
	var out []string
	for _, drive := range lib.Drives(master.Function) {
		for _, vt := range []liberty.VtClass{liberty.LVT, liberty.SVT, liberty.HVT} {
			if v := lib.Variant(master, drive, vt); v != nil {
				out = append(out, v.Name)
			}
		}
	}
	return out
}
