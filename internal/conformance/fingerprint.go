package conformance

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"newgame/internal/sta"
)

// Fingerprint renders the complete externally observable analysis state
// of an analyzer — every pin/port arrival and slew at all four
// rise/fall × early/late views, every endpoint check, WNS and TNS — into
// one digest. Two analyzers agree on timing iff their fingerprints are
// equal: float bits are hashed raw, so this is byte-equality, not
// tolerance comparison. The iteration order is the design's own slice
// order, which clones preserve, so fingerprints are comparable across
// independently built analyzers of identical netlists.
func Fingerprint(a *sta.Analyzer) string {
	h := sha256.New()
	buf := make([]byte, 8)
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		h.Write(buf)
	}
	s := func(str string) { h.Write([]byte(str)); h.Write([]byte{0}) }
	pinState := func(get func(rf, el int) (float64, bool)) {
		for rf := 0; rf < 2; rf++ {
			for el := 0; el < 2; el++ {
				v, ok := get(rf, el)
				if !ok {
					h.Write([]byte{0xff})
					continue
				}
				f(v)
			}
		}
	}
	for _, c := range a.D.Cells {
		s(c.Name)
		for _, p := range c.Pins {
			pin := p
			pinState(func(rf, el int) (float64, bool) {
				v, ok := a.PinArrival(pin, rf, el)
				return float64(v), ok
			})
			pinState(func(rf, el int) (float64, bool) {
				v, ok := a.PinSlew(pin, rf, el)
				return float64(v), ok
			})
		}
	}
	for _, p := range a.D.Ports {
		port := p
		s(port.Name)
		pinState(func(rf, el int) (float64, bool) {
			v, ok := a.PortArrival(port, rf, el)
			return float64(v), ok
		})
		pinState(func(rf, el int) (float64, bool) {
			v, ok := a.PortSlew(port, rf, el)
			return float64(v), ok
		})
	}
	for _, kind := range []sta.CheckKind{sta.Setup, sta.Hold} {
		for _, e := range a.EndpointSlacks(kind) {
			s(e.Name())
			h.Write([]byte{byte(e.RF)})
			f(float64(e.Slack))
			f(float64(e.Arrival))
			f(float64(e.Required))
			f(float64(e.CRPR))
		}
		f(float64(a.WNS(kind)))
		f(float64(a.TNS(kind)))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// endpointKey identifies an endpoint check across analyzers of the same
// netlist (or clones of it) by name, kind and transition.
func endpointKey(e sta.EndpointSlack) string {
	return fmt.Sprintf("%s|%d|%d", e.Name(), e.Kind, e.RF)
}
