package conformance

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// FuzzConstraintsAndRun decodes arbitrary bytes into a design point plus a
// hostile constraint set (zero, negative and absurd clock periods,
// inverted IO windows) and a short edit script that may name nonexistent
// masters. The contract: construction and analysis never panic — bad
// masters answer with an error from sta.New — and when analysis does run,
// the aggregates stay sane: no NaNs, WNS/TNS clamped at zero, endpoint
// slacks sorted worst-first.
func FuzzConstraintsAndRun(f *testing.F) {
	dir := filepath.Join("testdata", "corpus", "constraints")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 12 {
			return
		}
		seed := int64(binary.LittleEndian.Uint64(raw))
		spec := SpecFor(seed)
		// Keep each exec cheap: the sweep covers big designs, fuzzing
		// covers weird parameters.
		spec.Gates = 30 + int(raw[8])%50
		spec.FFs = 3 + int(raw[9])%8
		period := units.Ps(int16(binary.LittleEndian.Uint16(raw[10:12]))) // signed: negative periods included
		lib := Lib()
		d := spec.Build(lib)

		cons := sta.NewConstraints()
		cons.AddClock("clk", period, d.Port("clk"))
		rest := raw[12:]
		for i, p := range d.Ports {
			if p.Name == "clk" {
				continue
			}
			min, max := units.Ps(0), units.Ps(0)
			if len(rest) > 2*i+1 {
				min, max = units.Ps(int8(rest[2*i])), units.Ps(int8(rest[2*i+1]))
			}
			switch p.Dir {
			case netlist.Input:
				cons.InputDelay[p] = sta.IODelay{Min: min, Max: max}
			case netlist.Output:
				cons.OutputDelay[p] = sta.IODelay{Clock: cons.Clocks[0], Min: min, Max: max}
			}
		}
		// Edit script: retype cells to byte-derived master names. Most are
		// garbage; sta.New must reject them with an error, not a panic.
		for i := 0; i+1 < len(rest) && i < 8; i += 2 {
			c := d.Cells[int(rest[i])%len(d.Cells)]
			switch rest[i+1] % 3 {
			case 0:
				c.SetType(fmt.Sprintf("INV_X%d_SVT", rest[i+1]%9))
			case 1:
				c.SetType(fmt.Sprintf("BOGUS_%d", rest[i+1]))
			}
		}

		a, err := sta.New(d, cons, sta.Config{
			Lib:        lib,
			Parasitics: sta.NewNetBinder(parasitics.Stack16(), spec.Seed),
		})
		if err != nil {
			return // rejected cleanly; that is the contract
		}
		if err := a.Run(); err != nil {
			return
		}
		for _, kind := range []sta.CheckKind{sta.Setup, sta.Hold} {
			wns, tns := a.WNS(kind), a.TNS(kind)
			if math.IsNaN(float64(wns)) || math.IsNaN(float64(tns)) {
				t.Fatalf("%v: NaN aggregate: WNS %v TNS %v (period %v)", kind, wns, tns, period)
			}
			if wns > 0 || tns > 0 {
				t.Fatalf("%v: positive violation aggregate: WNS %v TNS %v", kind, wns, tns)
			}
			eps := a.EndpointSlacks(kind)
			for i := 1; i < len(eps); i++ {
				if eps[i].Slack < eps[i-1].Slack {
					t.Fatalf("%v: endpoint slacks not sorted worst-first at %d: %v after %v",
						kind, i, eps[i].Slack, eps[i-1].Slack)
				}
			}
		}
	})
}
