package conformance

import (
	"fmt"

	"newgame/internal/sta"
)

// checkCSRMatchesPointerWalk: the SoA core's flat CSR successor lists are
// a compiled form of the netlist pointer graph, and every downstream
// guarantee (levelization, propagation order, incremental cone marking)
// assumes they enumerate exactly the edges the pointer walk would — in
// the same order, since merge tie-breaks make enumeration order
// observable. Quantified per vertex over the design distribution, plus
// the fanin side: the CSR fanin record of every net-fed vertex must point
// back at a driver whose successor list names this vertex at exactly the
// recorded sink position (sink index = successor position is what lets
// the engine index net delay results without search).
func checkCSRMatchesPointerWalk(cx *Ctx) error {
	a, err := cx.Base()
	if err != nil {
		return err
	}
	var csr, ptr []int
	for i := 0; i < a.NumVerts(); i++ {
		csr = csr[:0]
		ptr = ptr[:0]
		a.SuccessorsCSR(i, func(j int) { csr = append(csr, j) })
		a.SuccessorsPointerWalk(i, func(j int) { ptr = append(ptr, j) })
		if len(csr) != len(ptr) {
			return fmt.Errorf("vertex %d: CSR enumerates %d successors, pointer walk %d",
				i, len(csr), len(ptr))
		}
		for k := range csr {
			if csr[k] != ptr[k] {
				return fmt.Errorf("vertex %d successor %d: CSR gives %d, pointer walk gives %d",
					i, k, csr[k], ptr[k])
			}
		}
	}
	for i := 0; i < a.NumVerts(); i++ {
		driver, net, sink := a.FaninEdge(i)
		if driver < 0 {
			continue
		}
		if net == nil {
			return fmt.Errorf("vertex %d: fanin driver %d recorded with nil net", i, driver)
		}
		pos := -1
		k := 0
		a.SuccessorsCSR(driver, func(j int) {
			if k == sink {
				pos = j
			}
			k++
		})
		if pos != i {
			return fmt.Errorf("vertex %d: fanin (driver %d, sink %d) not mirrored in CSR: successor at that position is %d",
				i, driver, sink, pos)
		}
	}
	return nil
}

// checkTopologySharedIsolated: a frozen Topology is shared read-only
// across MCMM scenario analyzers and timingd snapshots, so the law that
// makes sharing safe is isolation — two analyzers adopting one topology
// over independent clones, then edited along *different* what-if scripts
// with interleaved incremental updates, must each land bit-identical to a
// fully independent analyzer built from scratch on its own edited
// netlist. Any mutable state leaking through the shared half would show
// up as cross-contamination here.
func checkTopologySharedIsolated(cx *Ctx) error {
	d1 := cx.Design.Clone()
	d2 := cx.Design.Clone()
	period := cx.Cons.Clocks[0].Period
	cons1 := cx.constraintsFor(d1, period)
	cons2 := cx.constraintsFor(d2, period)

	a1, err := sta.New(d1, cons1, cx.fullCfg(1))
	if err != nil {
		return err
	}
	cfg2 := cx.fullCfg(1)
	cfg2.Topology = a1.Topology()
	a2, err := sta.New(d2, cons2, cfg2)
	if err != nil {
		return err
	}
	if !a2.SharedTopology() {
		return fmt.Errorf("second analyzer over a clone rejected the frozen topology")
	}
	if err := a1.Run(); err != nil {
		return err
	}
	if err := a2.Run(); err != nil {
		return err
	}

	// Diverge the twins: independent random edit scripts, incremental
	// updates interleaved mid-script like a real ECO loop.
	script1 := randomEditScript(cx, d1)
	script2 := randomEditScript(cx, d2)
	for _, pair := range []struct {
		a      *sta.Analyzer
		script []EditOp
	}{{a1, script1}, {a2, script2}} {
		for i, op := range pair.script {
			c := pair.a.D.Cell(op.Cell)
			if c == nil {
				return fmt.Errorf("edit %d: no cell %q in clone", i, op.Cell)
			}
			c.SetType(op.To)
			pair.a.InvalidateCell(c)
			if i%3 == 2 {
				if err := pair.a.Update(); err != nil {
					return err
				}
			}
		}
		if err := pair.a.Update(); err != nil {
			return err
		}
	}

	// Each twin must match a from-scratch analyzer on its own netlist.
	for i, pair := range []struct {
		a    *sta.Analyzer
		cons *sta.Constraints
	}{{a1, cons1}, {a2, cons2}} {
		fresh, err := sta.New(pair.a.D, pair.cons, cx.fullCfg(1))
		if err != nil {
			return err
		}
		if err := fresh.Run(); err != nil {
			return err
		}
		if fs, ff := Fingerprint(pair.a), Fingerprint(fresh); fs != ff {
			return fmt.Errorf("shared-topology analyzer %d diverged from independent analyzer after edits: %s vs %s",
				i+1, fs[:16], ff[:16])
		}
	}
	return nil
}
