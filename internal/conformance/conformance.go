// Package conformance is the correctness lab of the timing stack: a
// registry of executable metamorphic laws (PBA vs GBA, CRPR, k-worst
// ordering, incremental vs full analysis, MCMM merging, monotonicity,
// serial-vs-parallel byte-equality) checked over randomly generated
// designs, plus the minimized-reproducer plumbing that turns a failing
// law instance into a permanent regression case. The paper's thesis —
// every tightening of the goal posts is only trustworthy if the analyses
// stay mutually consistent — becomes a test harness here: instead of
// spot-checking a handful of hand-written designs, every invariant is a
// law quantified over a design distribution.
package conformance

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// Scope says how often a law runs: once per generated design, or once
// per registry run (library-level and engine-determinism laws whose
// inputs don't vary by design).
type Scope int

const (
	// PerDesign laws quantify over the random design distribution.
	PerDesign Scope = iota
	// PerRun laws check process-wide artifacts (the shared library,
	// generator determinism) once per sweep.
	PerRun
)

// Invariant is one executable law.
type Invariant struct {
	// Name is the stable law identifier (kebab-case); repro records
	// reference it.
	Name string
	// Law is the one-line statement of what must hold and why.
	Law string
	// Scope selects per-design or per-run evaluation.
	Scope Scope
	// Check evaluates the law; a non-nil error is a violation (or an
	// infrastructure failure — both fail the sweep).
	Check func(cx *Ctx) error
}

// Registry returns every law, in evaluation order. Laws that mutate the
// design work on clones, so the order is not load-bearing; it is chosen
// so the cheapest laws report first.
func Registry() []Invariant {
	return []Invariant{
		{
			Name:  "crpr-credit-nonnegative",
			Law:   "CRPR removes pessimism only: the credit is ≥ 0 at every endpoint and vanishes when early and late clock analyses coincide",
			Scope: PerDesign,
			Check: checkCRPR,
		},
		{
			Name:  "pba-refines-gba",
			Law:   "path-based analysis only removes pessimism: PBA slack ≥ GBA slack for every retimed path, setup and hold",
			Scope: PerDesign,
			Check: checkPBARefinesGBA,
		},
		{
			Name:  "kworst-sorted-prefix-stable",
			Law:   "k-worst path lists are sorted worst-first and prefix-stable in k; slack-window path sets stay inside the window",
			Scope: PerDesign,
			Check: checkKWorst,
		},
		{
			Name:  "slack-linear-in-period",
			Law:   "single-cycle setup slack shifts exactly with the clock period; hold slack is period-independent",
			Scope: PerDesign,
			Check: checkSlackLinearInPeriod,
		},
		{
			Name:  "sta-serial-parallel-identical",
			Law:   "level-parallel propagation is bit-identical to serial at every worker count",
			Scope: PerDesign,
			Check: checkSTASerialParallel,
		},
		{
			Name:  "csr-matches-pointer-walk",
			Law:   "the SoA core's CSR successor and fanin lists enumerate exactly the edges of the netlist pointer walk, in the same order",
			Scope: PerDesign,
			Check: checkCSRMatchesPointerWalk,
		},
		{
			Name:  "soa-topology-shared-isolated",
			Law:   "two analyzers sharing one frozen topology, edited along different what-if scripts, each stay bit-identical to fully independent analyzers",
			Scope: PerDesign,
			Check: checkTopologySharedIsolated,
		},
		{
			Name:  "mcmm-merge-min-sum",
			Law:   "merged MCMM WNS is the min over scenario WNS (clamped at 0) and merged TNS is the sum; sweep results are worker-count invariant",
			Scope: PerDesign,
			Check: checkMCMMMerge,
		},
		{
			Name:  "incremental-matches-full",
			Law:   "incremental Update after an arbitrary resize edit script is bit-identical to a full Run on the edited design",
			Scope: PerDesign,
			Check: checkIncrementalMatchesFull,
		},
		{
			Name:  "pack-roundtrip-identical",
			Law:   "a snapshot pack round-trip — encode, decode, rebuild from decoded bytes only — reproduces the live analyzer's observable timing state bit-for-bit, with the frozen topology adopted unchanged",
			Scope: PerDesign,
			Check: checkPackRoundTrip,
		},
		{
			Name:  "dominance-prune-sound",
			Law:   "scenario-dominance pruning skips path walks, never numbers: every pruned (endpoint, scenario) pair re-analyzed without pruning has slack no worse than its dominating sibling reported, and the clustered report is unchanged",
			Scope: PerDesign,
			Check: checkDominancePruneSound,
		},
		{
			Name:  "triage-cluster-merge-identical",
			Law:   "the /triage relation graph merged from 1/2/4-shard clusters is byte-identical to a single node holding the full recipe",
			Scope: PerDesign,
			Check: checkTriageClusterMerge,
		},
		{
			Name:  "delay-monotone-load-slew",
			Law:   "NLDM cell delay and output slew are nondecreasing in output load and input slew over every characterized arc",
			Scope: PerRun,
			Check: checkDelayMonotone,
		},
		{
			Name:  "libgen-workers-identical",
			Law:   "parallel library characterization is byte-identical to serial",
			Scope: PerRun,
			Check: checkLibgenWorkers,
		},
		{
			Name:  "survey-workers-identical",
			Law:   "the closure engine's MCMM survey merges identically at every worker count",
			Scope: PerRun,
			Check: checkSurveyWorkers,
		},
		{
			Name:  "cluster-merge-identical",
			Law:   "a scenario-sharded timingd cluster is invisible: merged reads are bit-identical to a single node at every shard count, merged WNS/TNS are exactly min/sum, and an epoch-barrier ECO lands on the single node's post-commit state",
			Scope: PerRun,
			Check: checkClusterMerge,
		},
	}
}

// Ctx carries everything one law evaluation needs. Per-design laws get a
// fresh Ctx per generated design; per-run laws get one with a zero Spec.
type Ctx struct {
	Spec  DesignSpec
	Lib   *liberty.Library
	Stack *parasitics.Stack
	// Design/Cons are the generated block and its SDC view. Laws that
	// mutate netlists must work on clones.
	Design *netlist.Design
	Cons   *sta.Constraints
	// Edits is the requested edit-script length for incremental laws.
	Edits int
	// ForcedEdits, when non-nil, replaces the random edit script — the
	// replay path of a minimized reproducer.
	ForcedEdits []EditOp
	// AppliedEdits records the script the incremental law actually ran,
	// so a failure can be minimized and persisted.
	AppliedEdits []EditOp

	rng  *rand.Rand
	base *sta.Analyzer
	// triagePd memoizes the violation-forcing period the triage laws
	// share, so the probe analysis runs once per design.
	triagePd units.Ps
}

// sharedLib memoizes the (expensive) generated characterization library:
// every design in a sweep shares it, exactly like a real signoff flow.
var (
	libOnce   sync.Once
	sharedLib *liberty.Library
)

// Lib returns the process-shared Node16 library the lab analyzes against.
func Lib() *liberty.Library {
	libOnce.Do(func() {
		sharedLib = liberty.Generate(liberty.Node16,
			liberty.PVT{Process: liberty.TT, Voltage: 0.8, Temp: 85}, liberty.GenOptions{})
	})
	return sharedLib
}

// newCtx builds the per-design context: generated block, constraints,
// deterministic RNG.
func newCtx(spec DesignSpec, edits int) *Ctx {
	cx := &Ctx{
		Spec:  spec,
		Lib:   Lib(),
		Stack: parasitics.Stack16(),
		Edits: edits,
		rng:   rand.New(rand.NewSource(mix(spec.Seed, 0x5eed))),
	}
	cx.Design = spec.Build(cx.Lib)
	cx.Cons = cx.constraintsFor(cx.Design, units.Ps(spec.Period))
	return cx
}

// constraintsFor builds the SDC view used by every law: the clock at the
// spec period plus IO delay windows on all data ports, so port endpoints
// participate in the checks.
func (cx *Ctx) constraintsFor(d *netlist.Design, period units.Ps) *sta.Constraints {
	cons := sta.NewConstraints()
	cons.AddClock("clk", period, d.Port("clk"))
	for _, p := range d.Ports {
		if p.Name == "clk" {
			continue
		}
		switch p.Dir {
		case netlist.Input:
			cons.InputDelay[p] = sta.IODelay{Min: 10, Max: 30}
		case netlist.Output:
			cons.OutputDelay[p] = sta.IODelay{Clock: cons.Clocks[0], Min: 5, Max: 25}
		}
	}
	return cons
}

// fullCfg is the stressed analysis view (AOCV + SI + MIS) most laws are
// quantified over — the NEW-goal-posts end of the paper's Figure 2.
func (cx *Ctx) fullCfg(workers int) sta.Config {
	return sta.Config{
		Lib:        cx.Lib,
		Parasitics: sta.NewNetBinder(cx.Stack, cx.Spec.Seed),
		SI:         sta.DefaultSI(),
		Derate:     sta.DefaultAOCV(),
		MIS:        true,
		Workers:    workers,
	}
}

// Base lazily builds and runs the shared serial reference analyzer.
func (cx *Ctx) Base() (*sta.Analyzer, error) {
	if cx.base != nil {
		return cx.base, nil
	}
	a, err := sta.New(cx.Design, cx.Cons, cx.fullCfg(1))
	if err != nil {
		return nil, err
	}
	if err := a.Run(); err != nil {
		return nil, err
	}
	cx.base = a
	return a, nil
}

// Options shapes one registry sweep.
type Options struct {
	// Designs is the number of random designs per-design laws quantify
	// over (default 25).
	Designs int
	// Edits is the edit-script length for incremental laws (default 8).
	Edits int
	// Seed keys the whole sweep.
	Seed int64
	// Only, when non-empty, restricts the sweep to the named laws.
	Only map[string]bool
	// Out, when non-nil, receives per-law progress lines.
	Out io.Writer
	// Verbose adds per-design lines to Out.
	Verbose bool
}

// LawResult aggregates one law's sweep outcome.
type LawResult struct {
	Invariant Invariant
	Checks    int
	Failures  []Failure
	Elapsed   time.Duration
}

// Failure is one violated (or crashed) law instance, with enough state
// to replay it.
type Failure struct {
	Invariant string
	Err       string
	Repro     Repro
}

// Result is the outcome of one sweep.
type Result struct {
	Designs int
	Laws    []LawResult
	Elapsed time.Duration
}

// Failures flattens every law's failures.
func (r Result) Failures() []Failure {
	var out []Failure
	for _, lr := range r.Laws {
		out = append(out, lr.Failures...)
	}
	return out
}

// String renders the operator-facing summary table.
func (r Result) String() string {
	var b []byte
	b = append(b, fmt.Sprintf("conformance: %d designs, %d laws in %.1fs\n",
		r.Designs, len(r.Laws), r.Elapsed.Seconds())...)
	for _, lr := range r.Laws {
		status := "ok"
		if len(lr.Failures) > 0 {
			status = fmt.Sprintf("FAIL x%d", len(lr.Failures))
		}
		b = append(b, fmt.Sprintf("  %-32s %4d checks %8s  %s\n",
			lr.Invariant.Name, lr.Checks, lr.Elapsed.Round(time.Millisecond), status)...)
	}
	return string(b)
}

// Run executes the registry sweep: every per-design law over Designs
// generated blocks, every per-run law once.
func Run(opts Options) Result {
	if opts.Designs <= 0 {
		opts.Designs = 25
	}
	if opts.Edits <= 0 {
		opts.Edits = 8
	}
	laws := Registry()
	if len(opts.Only) > 0 {
		kept := laws[:0]
		for _, law := range laws {
			if opts.Only[law.Name] {
				kept = append(kept, law)
			}
		}
		laws = kept
	}
	results := make([]LawResult, len(laws))
	for i, law := range laws {
		results[i].Invariant = law
	}

	start := time.Now()
	// Per-run laws first: they gate everything else (a non-deterministic
	// library would invalidate every per-design comparison).
	runCtx := &Ctx{Lib: Lib(), Stack: parasitics.Stack16(),
		rng: rand.New(rand.NewSource(mix(opts.Seed, -1)))}
	for i, law := range laws {
		if law.Scope != PerRun {
			continue
		}
		t0 := time.Now()
		if err := law.Check(runCtx); err != nil {
			results[i].Failures = append(results[i].Failures, Failure{
				Invariant: law.Name, Err: err.Error(),
				Repro: Repro{Invariant: law.Name},
			})
		}
		results[i].Checks++
		results[i].Elapsed += time.Since(t0)
		progress(opts, "law %s: done (%s)", law.Name, time.Since(t0).Round(time.Millisecond))
	}

	for d := 0; d < opts.Designs; d++ {
		spec := SpecFor(mix(opts.Seed, int64(d)))
		cx := newCtx(spec, opts.Edits)
		if opts.Verbose {
			progress(opts, "design %d/%d: %+v", d+1, opts.Designs, spec)
		}
		for i, law := range laws {
			if law.Scope != PerDesign {
				continue
			}
			t0 := time.Now()
			cx.AppliedEdits = nil
			if err := law.Check(cx); err != nil {
				results[i].Failures = append(results[i].Failures, Failure{
					Invariant: law.Name, Err: err.Error(),
					Repro: Repro{Invariant: law.Name, Design: spec, Edits: cx.AppliedEdits},
				})
			}
			results[i].Checks++
			results[i].Elapsed += time.Since(t0)
		}
	}
	return Result{Designs: opts.Designs, Laws: results, Elapsed: time.Since(start)}
}

func progress(opts Options, format string, args ...any) {
	if opts.Out != nil {
		fmt.Fprintf(opts.Out, format+"\n", args...)
	}
}

// mix derives independent sub-seeds (splitmix64 finalizer) so every
// design and law sees an uncorrelated deterministic stream.
func mix(seed, i int64) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// sortedEndpoints returns both check kinds' endpoint lists; shared by
// several laws.
func sortedEndpoints(a *sta.Analyzer) []sta.EndpointSlack {
	out := a.EndpointSlacks(sta.Setup)
	out = append(out, a.EndpointSlacks(sta.Hold)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Slack < out[j].Slack })
	return out
}
