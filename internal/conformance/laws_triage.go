package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"

	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/timingd"
	"newgame/internal/triage"
	"newgame/internal/units"
)

// triageRecipe is the four-scenario lab recipe the triage laws quantify
// over: two setup views and two hold views, all delay-identical (same
// library, BEOL corner and flat OCV), distinguished only by uncertainty
// margins. The loose sibling of each pair is provably dominated by the
// tight one, so the dominance planner must prune exactly two
// (scenario, kind) extractions — and the four scenarios give every shard
// count in {1, 2, 4} at least one scenario per worker.
func triageRecipe(lib *liberty.Library, stack *parasitics.Stack) core.Recipe {
	scaling := stack.Corner(parasitics.CWorst, 3)
	flat := sta.DefaultFlatOCV()
	sc := func(name string) core.Scenario {
		return core.Scenario{Name: name, Lib: lib, Scaling: scaling, PeriodScale: 1, Derate: flat}
	}
	tightSetup := sc("func_tight")
	tightSetup.ForSetup, tightSetup.SetupUncertainty = true, 25
	looseSetup := sc("func_loose")
	looseSetup.ForSetup, looseSetup.SetupUncertainty = true, 10
	tightHold := sc("hold_tight")
	tightHold.ForHold, tightHold.HoldUncertainty = true, 15
	looseHold := sc("hold_loose")
	looseHold.ForHold, looseHold.HoldUncertainty = true, 5
	return core.Recipe{
		Name:      "triage_lab",
		Scenarios: []core.Scenario{tightSetup, looseSetup, tightHold, looseHold},
	}
}

// triagePeriod picks (and memoizes per design) a clock period that leaves
// the tightest setup scenario with a worst slack near -60 ps, so every
// design in the sweep actually has violations to cluster and the dominated
// setup sibling (15 ps looser) still violates. Single-cycle setup slack is
// linear in period (its own law), so one probe run suffices.
func (cx *Ctx) triagePeriod() (units.Ps, error) {
	if cx.triagePd != 0 {
		return cx.triagePd, nil
	}
	rcp := triageRecipe(cx.Lib, cx.Stack)
	tight := rcp.Scenarios[0]
	probe := units.Ps(cx.Spec.Period)
	cons := core.ConstraintsFor(cx.Design, cx.Design.Port("clk"), probe, 0, tight)
	a, err := sta.New(cx.Design, cons, sta.Config{
		Lib: tight.Lib, Parasitics: sta.NewNetBinder(cx.Stack, cx.Spec.Seed),
		Scaling: tight.Scaling, Derate: tight.Derate, Workers: 1,
	})
	if err != nil {
		return 0, fmt.Errorf("triage period probe: %v", err)
	}
	if err := a.Run(); err != nil {
		return 0, fmt.Errorf("triage period probe run: %v", err)
	}
	es := a.EndpointSlacks(sta.Setup)
	if len(es) == 0 {
		return 0, fmt.Errorf("design has no setup endpoints")
	}
	pd := probe - es[0].Slack - 60
	if pd < 60 {
		pd = 60
	}
	cx.triagePd = pd
	return pd, nil
}

// checkDominancePruneSound: scenario-dominance pruning is an optimization,
// never an approximation. For every pruned (endpoint, scenario) pair,
// re-analysis without pruning reports a slack no better than the
// dominating sibling reported for that endpoint — the dominator really is
// a worse bound — and the pruned extraction is feature-identical to the
// direct one: same violations, same slacks bit for bit, same clustered
// report, with the skipped path walks exactly accounted for.
func checkDominancePruneSound(cx *Ctx) error {
	rcp := triageRecipe(cx.Lib, cx.Stack)
	pd, err := cx.triagePeriod()
	if err != nil {
		return err
	}
	scens := rcp.Scenarios
	plan := triage.PlanFor(scens, pd)
	idx := make(map[string]int, len(scens))
	for i, sc := range scens {
		idx[sc.Name] = i
	}
	if plan.SetupDominator[idx["func_loose"]] != idx["func_tight"] ||
		plan.SetupDominator[idx["func_tight"]] != -1 ||
		plan.HoldDominator[idx["hold_loose"]] != idx["hold_tight"] ||
		plan.HoldDominator[idx["hold_tight"]] != -1 {
		return fmt.Errorf("plan dominators setup=%v hold=%v do not match the recipe's dominance structure",
			plan.SetupDominator, plan.HoldDominator)
	}
	if len(plan.Prunes) != 2 {
		return fmt.Errorf("want 2 prune records, got %+v", plan.Prunes)
	}

	// One resident analyzer per scenario, sharing parasitics and a frozen
	// topology — the same arrangement timingd holds.
	bind := sta.NewNetBinder(cx.Stack, cx.Spec.Seed)
	var topo *sta.Topology
	analyzers := make([]*sta.Analyzer, len(scens))
	for i, s := range scens {
		cons := core.ConstraintsFor(cx.Design, cx.Design.Port("clk"), pd, 0, s)
		a, err := sta.New(cx.Design, cons, sta.Config{
			Lib: s.Lib, Parasitics: bind, Scaling: s.Scaling, Derate: s.Derate,
			SI: s.SI, MIS: s.MIS, Workers: 1, Topology: topo,
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %v", s.Name, err)
		}
		if err := a.Run(); err != nil {
			return fmt.Errorf("scenario %s run: %v", s.Name, err)
		}
		if topo == nil {
			topo = a.Topology()
		}
		analyzers[i] = a
	}

	var opts triage.Options
	noPrune := triage.NoPrune(plan)
	pruned := make([]triage.ScenarioExtract, len(scens))
	direct := make([]triage.ScenarioExtract, len(scens))
	for i := range scens {
		pruned[i] = triage.ExtractScenario(analyzers[i], plan, i, opts)
		direct[i] = triage.ExtractScenario(analyzers[i], noPrune, i, opts)
	}

	totalPruned := 0
	for i := range scens {
		p, f := pruned[i], direct[i]
		if f.PrunedPairs != 0 {
			return fmt.Errorf("%s: unpruned extraction claims %d pruned pairs", f.Scenario, f.PrunedPairs)
		}
		if p.AnalyzedPairs+p.PrunedPairs != f.AnalyzedPairs {
			return fmt.Errorf("%s: pair accounting %d analyzed + %d pruned != %d analyzed unpruned",
				p.Scenario, p.AnalyzedPairs, p.PrunedPairs, f.AnalyzedPairs)
		}
		if len(p.Violations) != len(f.Violations) {
			return fmt.Errorf("%s: pruning changed the violation count %d -> %d",
				p.Scenario, len(f.Violations), len(p.Violations))
		}
		totalPruned += p.PrunedPairs
		for k := range p.Violations {
			pv, fv := p.Violations[k], f.Violations[k]
			if pv.Endpoint != fv.Endpoint || pv.Kind != fv.Kind || pv.RF != fv.RF || pv.Slack != fv.Slack {
				return fmt.Errorf("%s: pruning changed a reported check:\n  pruned: %+v\n  direct: %+v",
					p.Scenario, pv, fv)
			}
			if pv.PrunedBy == "" {
				continue
			}
			// The soundness obligation itself: the dominator reported this
			// endpoint, and at least as badly as direct re-analysis does.
			dom := direct[idx[pv.PrunedBy]]
			var dv *triage.Violation
			for m := range dom.Violations {
				if dom.Violations[m].Kind == pv.Kind && dom.Violations[m].Endpoint == pv.Endpoint {
					dv = &dom.Violations[m]
					break
				}
			}
			if dv == nil {
				return fmt.Errorf("%s/%s %s: pruned under %s, which does not report the endpoint",
					p.Scenario, pv.Kind, pv.Endpoint, pv.PrunedBy)
			}
			if dv.Slack > fv.Slack {
				return fmt.Errorf("%s/%s %s: dominator %s slack %v is better than re-analyzed %v — prune unsound",
					p.Scenario, pv.Kind, pv.Endpoint, pv.PrunedBy, dv.Slack, fv.Slack)
			}
		}
	}
	if totalPruned == 0 {
		return fmt.Errorf("dominated scenarios violate but nothing was pruned")
	}

	// The clustered report is invariant under pruning up to the audit tags:
	// inherited features resolve to the very bytes direct analysis produces.
	pc, _ := json.Marshal(stripPrunedBy(triage.BuildReport(pruned).Clusters))
	fc, _ := json.Marshal(stripPrunedBy(triage.BuildReport(direct).Clusters))
	if !bytes.Equal(pc, fc) {
		return fmt.Errorf("pruning changed the clustered report:\n  pruned: %s\n  direct: %s", pc, fc)
	}
	return nil
}

// stripPrunedBy clears the audit tag, the one field pruning is allowed to
// change, so the rest of the report can be compared byte for byte.
func stripPrunedBy(cs []triage.Cluster) []triage.Cluster {
	out := make([]triage.Cluster, len(cs))
	for i, c := range cs {
		c.Violations = append([]triage.Violation(nil), c.Violations...)
		for j := range c.Violations {
			c.Violations[j].PrunedBy = ""
		}
		out[i] = c
	}
	return out
}

// checkTriageClusterMerge: the relation graph does not care where the
// scenarios live. A coordinator scattering per-scenario extraction to 1,
// 2 or 4 shards and merging at the center serves /triage byte-identical
// to one timingd holding the whole recipe — clusters, ranks, prune audit
// and pair accounting included.
func checkTriageClusterMerge(cx *Ctx) error {
	rcp := triageRecipe(cx.Lib, cx.Stack)
	pd, err := cx.triagePeriod()
	if err != nil {
		return err
	}
	names := make([]string, len(rcp.Scenarios))
	for i, sc := range rcp.Scenarios {
		names[i] = sc.Name
	}

	newWorker := func(filter []string) (*timingd.Server, *httptest.Server, error) {
		cfg := timingd.Config{
			Design: cx.Design, Recipe: rcp, Stack: cx.Stack,
			BasePeriod: pd, Seed: cx.Spec.Seed, QueryWorkers: 2,
		}
		if filter != nil {
			cfg.Role = "worker"
			cfg.ScenarioFilter = filter
		}
		srv, err := timingd.NewServer(cfg)
		if err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv), nil
	}

	refSrv, refHS, err := newWorker(nil)
	if err != nil {
		return fmt.Errorf("single-node boot: %v", err)
	}
	defer func() { refHS.Close(); refSrv.Close() }()
	_, refBody, err := httpGet(refHS.URL + "/triage")
	if err != nil {
		return fmt.Errorf("single-node triage: %v", err)
	}
	var ref timingd.TriageReport
	if err := json.Unmarshal(refBody, &ref); err != nil {
		return fmt.Errorf("single-node triage body: %v", err)
	}
	if ref.Stats.Violations == 0 || len(ref.Clusters) == 0 {
		return fmt.Errorf("triage lab produced no violations at period %v", pd)
	}
	if ref.Stats.PrunedPairs == 0 {
		return fmt.Errorf("dominance pruning skipped nothing: %+v", ref.Stats)
	}

	for _, shards := range []int{1, 2, 4} {
		if err := checkTriageShardCount(shards, names, newWorker, refBody); err != nil {
			return fmt.Errorf("shards=%d: %v", shards, err)
		}
	}
	return nil
}

func checkTriageShardCount(shards int, names []string,
	newWorker func([]string) (*timingd.Server, *httptest.Server, error), refBody []byte) error {
	coord, workers, err := bootCluster(shards, names, newWorker)
	if err != nil {
		return err
	}
	defer coord.close()
	defer workers.close()
	_, body, err := httpGet(coord.url + "/triage")
	if err != nil {
		return fmt.Errorf("cluster triage: %v", err)
	}
	// The coordinator re-marshals the merged report without the worker
	// encoder's trailing newline; the payload must match byte for byte.
	if !bytes.Equal(bytes.TrimSpace(body), bytes.TrimSpace(refBody)) {
		return fmt.Errorf("triage reports diverge from single node:\n  single: %s\n  cluster: %s", refBody, body)
	}
	return nil
}
