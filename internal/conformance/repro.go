package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"newgame/internal/parasitics"
)

// Repro is a minimized, serializable reproducer for one law violation:
// the design recipe plus (for edit-script laws) the exact edits. Failing
// sweeps emit these; once the underlying bug is fixed the record moves
// into testdata/repros/ and replays forever as a regression case.
type Repro struct {
	Invariant string     `json:"invariant"`
	Design    DesignSpec `json:"design"`
	Edits     []EditOp   `json:"edits,omitempty"`
	// Note says what the record demonstrates (free text for humans).
	Note string `json:"note,omitempty"`
}

// Replay re-evaluates the repro's law on its recorded design (and edit
// script, when present). A nil return means the law holds.
func Replay(r Repro) error {
	var law *Invariant
	for _, inv := range Registry() {
		if inv.Name == r.Invariant {
			law = &inv
			break
		}
	}
	if law == nil {
		return fmt.Errorf("repro references unknown invariant %q", r.Invariant)
	}
	if law.Scope == PerRun {
		return law.Check(&Ctx{Lib: Lib(), Stack: parasitics.Stack16()})
	}
	cx := newCtx(r.Design, len(r.Edits))
	cx.ForcedEdits = r.Edits
	return law.Check(cx)
}

// Minimize shrinks a failing repro while the failure persists, using
// ddmin-style chunk removal over the edit script followed by a greedy
// single-edit pass. check is the failure oracle (non-nil error = still
// failing); Replay is the production oracle, injectable for tests.
func Minimize(r Repro, check func(Repro) error) Repro {
	if check(r) == nil {
		return r // not failing; nothing to minimize against
	}
	edits := r.Edits
	for chunk := len(edits) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(edits); {
			trial := r
			trial.Edits = append(append([]EditOp(nil), edits[:i]...), edits[i+chunk:]...)
			if check(trial) != nil {
				edits = trial.Edits
				// Same offset now holds the next chunk; don't advance.
				continue
			}
			i += chunk
		}
	}
	r.Edits = edits
	return r
}

// LoadRepros reads every reproducer under dir (testdata/repros), sorted
// by filename for deterministic replay order.
func LoadRepros(dir string) ([]Repro, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]Repro, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var r Repro
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Format renders a repro as the indented JSON developers commit to
// testdata/repros/.
func Format(r Repro) string {
	b, _ := json.MarshalIndent(r, "", "  ")
	return string(b) + "\n"
}
