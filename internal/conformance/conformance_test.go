package conformance

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestRegistrySweep runs every law over a small design sample — the
// in-tree version of the cmd/conform CI sweep.
func TestRegistrySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is not short")
	}
	res := Run(Options{Designs: 4, Edits: 6, Seed: 1})
	for _, f := range res.Failures() {
		t.Errorf("%s: %s\nrepro:\n%s", f.Invariant, f.Err, Format(f.Repro))
	}
	t.Log("\n" + res.String())
}

// TestReproCorpus replays every committed reproducer: each records a
// once-failing (or demonstrative) case that must hold forever.
func TestReproCorpus(t *testing.T) {
	repros, err := LoadRepros("testdata/repros")
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatal("no reproducers in testdata/repros; the corpus must at least hold the demonstrative case")
	}
	for i, r := range repros {
		r := r
		t.Run(fmt.Sprintf("%02d-%s", i, r.Invariant), func(t *testing.T) {
			t.Parallel()
			if err := Replay(r); err != nil {
				t.Errorf("repro regressed: %v\n%s", err, Format(r))
			}
		})
	}
}

func TestReplayUnknownInvariant(t *testing.T) {
	if err := Replay(Repro{Invariant: "no-such-law"}); err == nil ||
		!strings.Contains(err.Error(), "unknown invariant") {
		t.Fatalf("want unknown-invariant error, got %v", err)
	}
}

// TestMinimize drives the shrinker with a synthetic oracle: the failure
// needs edit "bad7" AND at least one of "bad2"/"bad4"; everything else
// is noise that must be removed.
func TestMinimize(t *testing.T) {
	var edits []EditOp
	for i := 0; i < 12; i++ {
		edits = append(edits, EditOp{Cell: fmt.Sprintf("bad%d", i), To: "X"})
	}
	oracle := func(r Repro) error {
		has := map[string]bool{}
		for _, e := range r.Edits {
			has[e.Cell] = true
		}
		if has["bad7"] && (has["bad2"] || has["bad4"]) {
			return errors.New("still failing")
		}
		return nil
	}
	min := Minimize(Repro{Invariant: "synthetic", Edits: edits}, oracle)
	if len(min.Edits) != 2 {
		t.Fatalf("minimized to %d edits (%v), want 2", len(min.Edits), min.Edits)
	}
	if oracle(min) == nil {
		t.Fatal("minimized repro no longer fails the oracle")
	}
}

// TestMinimizePassingReproIsIdentity: a repro that doesn't fail is
// returned untouched — minimizing against a passing oracle would strip
// everything.
func TestMinimizePassingReproIsIdentity(t *testing.T) {
	r := Repro{Invariant: "synthetic", Edits: []EditOp{{Cell: "a", To: "b"}}}
	min := Minimize(r, func(Repro) error { return nil })
	if len(min.Edits) != 1 {
		t.Fatalf("passing repro was modified: %v", min)
	}
}

// TestSpecForDeterministic: the design distribution is keyed entirely by
// the seed — same seed, same spec.
func TestSpecForDeterministic(t *testing.T) {
	if SpecFor(42) != SpecFor(42) {
		t.Fatal("SpecFor is not deterministic")
	}
	if SpecFor(1) == SpecFor(2) {
		t.Fatal("distinct seeds collapsed to one spec")
	}
}

// TestFingerprintDiscriminates: the fingerprint must move when timing
// state moves (different period ⇒ different required times).
func TestFingerprintDiscriminates(t *testing.T) {
	spec := SpecFor(mix(3, 0))
	cx := newCtx(spec, 0)
	a, err := cx.Base()
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Period += 40
	cx2 := newCtx(spec2, 0)
	b, err := cx2.Base()
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Fatal("fingerprint not stable on the same analyzer")
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("fingerprint blind to a period change")
	}
}
