package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"newgame/internal/circuits"
	"newgame/internal/cluster"
	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/timingd"
	"newgame/internal/units"
)

// clusterFixture memoizes the four-scenario recipe and block the cluster
// law quantifies over. Four scenarios (the two old-goal-posts views plus
// scan-mode variants at a doubled period) give every shard count in
// {1, 2, 4} at least one scenario per worker under round-robin sharding.
var (
	clusterFixOnce sync.Once
	clusterRcp     core.Recipe
	clusterDsn     *netlist.Design
)

func clusterFixture() (core.Recipe, *netlist.Design) {
	clusterFixOnce.Do(func() {
		stack := parasitics.Stack16()
		r := core.OldGoalPosts(liberty.Node16, stack)
		scanSS := r.Scenarios[0]
		scanSS.Name = "scan_ss_cw"
		scanSS.PeriodScale = 2
		scanSS.ForHold = true
		scanSS.HoldUncertainty = 15
		scanFF := r.Scenarios[1]
		scanFF.Name = "scan_ff_cb"
		scanFF.PeriodScale = 2
		r.Scenarios = append(r.Scenarios, scanSS, scanFF)
		clusterRcp = r
		clusterDsn = circuits.Block(r.Scenarios[0].Lib, circuits.BlockSpec{
			Name: "clx", Inputs: 6, Outputs: 6, FFs: 12, Gates: 140,
			MaxDepth: 6, Seed: 29, ClockBufferLevels: 2,
			VtMix: [3]float64{0, 0.5, 0.5},
		})
	})
	return clusterRcp, clusterDsn
}

// checkClusterMerge: sharding signoff scenarios across a timingd cluster
// is invisible to the caller — for every shard count, the coordinator's
// merged /slack carries byte-identical per-scenario reports (in canonical
// order) to one server holding all scenarios, merged WNS/TNS are exactly
// the min (clamped at 0) and sum over scenarios, per-scenario endpoint
// queries proxy to identical answers, and an epoch-barrier ECO through
// the coordinator lands every shard on the same post-commit state as the
// single node committing directly.
func checkClusterMerge(cx *Ctx) error {
	rcp, d := clusterFixture()
	names := make([]string, len(rcp.Scenarios))
	for i, sc := range rcp.Scenarios {
		names[i] = sc.Name
	}

	newWorker := func(filter []string) (*timingd.Server, *httptest.Server, error) {
		cfg := timingd.Config{
			Design: d, Recipe: rcp, Stack: parasitics.Stack16(),
			BasePeriod: 560, Seed: 13, QueryWorkers: 2,
		}
		if filter != nil {
			cfg.Role = "worker"
			cfg.ScenarioFilter = filter
		}
		srv, err := timingd.NewServer(cfg)
		if err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv), nil
	}

	// Single-node reference: every scenario in one session.
	refSrv, refHS, err := newWorker(nil)
	if err != nil {
		return fmt.Errorf("single-node boot: %v", err)
	}
	defer func() { refHS.Close(); refSrv.Close() }()

	var refSlack timingd.SlackReport
	if err := getJSON(refHS.URL+"/slack", &refSlack); err != nil {
		return fmt.Errorf("single-node slack: %v", err)
	}
	refScen, _ := json.Marshal(refSlack.Scenarios)
	refEndpoints := make([][]byte, len(names))
	for i, name := range names {
		_, body, err := httpGet(refHS.URL + "/endpoints?scenario=" + name + "&kind=setup&limit=5")
		if err != nil {
			return fmt.Errorf("single-node endpoints %s: %v", name, err)
		}
		refEndpoints[i] = body
	}

	for _, shards := range []int{1, 2, 4} {
		if err := checkClusterShardCount(shards, names, newWorker, refScen, refSlack, refEndpoints); err != nil {
			return fmt.Errorf("shards=%d: %v", shards, err)
		}
	}

	// Barrier identity: the same ECO committed through a two-shard
	// coordinator and directly on the single node yields byte-identical
	// scenario reports at the same epoch.
	op, err := clusterResizeOp(rcp, d)
	if err != nil {
		return err
	}
	coord, workers, err := bootCluster(2, names, newWorker)
	if err != nil {
		return err
	}
	defer coord.close()
	defer workers.close()

	ecoBody, _ := json.Marshal(struct {
		Ops []timingd.Op `json:"ops"`
	}{[]timingd.Op{op}})
	code, body, err := httpPost(coord.url+"/eco", ecoBody)
	if err != nil || code != 200 {
		return fmt.Errorf("cluster eco: %d %s (%v)", code, body, err)
	}
	code, body, err = httpPost(refHS.URL+"/eco", ecoBody)
	if err != nil || code != 200 {
		return fmt.Errorf("single-node eco: %d %s (%v)", code, body, err)
	}
	var after timingd.SlackReport
	if err := getJSON(refHS.URL+"/slack", &after); err != nil {
		return fmt.Errorf("single-node post-eco slack: %v", err)
	}
	var clAfter cluster.SlackReport
	if err := getJSON(coord.url+"/slack", &clAfter); err != nil {
		return fmt.Errorf("cluster post-eco slack: %v", err)
	}
	if clAfter.Epoch != 1 || after.Epoch != 1 {
		return fmt.Errorf("post-eco epochs: cluster %d, single %d, want 1", clAfter.Epoch, after.Epoch)
	}
	wa, _ := json.Marshal(after.Scenarios)
	ca, _ := json.Marshal(clAfter.Scenarios)
	if !bytes.Equal(wa, ca) {
		return fmt.Errorf("post-eco scenario reports diverge:\n  single: %s\n  cluster: %s", wa, ca)
	}
	return nil
}

// checkClusterShardCount boots one cluster at the given shard count and
// compares its merged read surface against the single-node reference.
func checkClusterShardCount(shards int, names []string,
	newWorker func([]string) (*timingd.Server, *httptest.Server, error),
	refScen []byte, refSlack timingd.SlackReport, refEndpoints [][]byte) error {
	coord, workers, err := bootCluster(shards, names, newWorker)
	if err != nil {
		return err
	}
	defer coord.close()
	defer workers.close()

	var sr cluster.SlackReport
	if err := getJSON(coord.url+"/slack", &sr); err != nil {
		return fmt.Errorf("cluster slack: %v", err)
	}
	if sr.Degraded || len(sr.Stale) != 0 {
		return fmt.Errorf("healthy cluster answered degraded: %+v", sr)
	}
	got, _ := json.Marshal(sr.Scenarios)
	if !bytes.Equal(got, refScen) {
		return fmt.Errorf("scenario reports diverge from single node:\n  single: %s\n  cluster: %s", refScen, got)
	}

	// Merged aggregates are pure min/sum over the (identical) scenarios.
	setupWNS, holdWNS := units.Ps(0), units.Ps(0)
	var setupTNS, holdTNS units.Ps
	for _, sc := range refSlack.Scenarios {
		if sc.SetupWNS < setupWNS {
			setupWNS = sc.SetupWNS
		}
		if sc.HoldWNS < holdWNS {
			holdWNS = sc.HoldWNS
		}
		setupTNS += sc.SetupTNS
		holdTNS += sc.HoldTNS
	}
	m := sr.Merged
	if m.SetupWNS != setupWNS || m.HoldWNS != holdWNS || m.SetupTNS != setupTNS || m.HoldTNS != holdTNS {
		return fmt.Errorf("merged (%v/%v, %v/%v) is not min/sum (%v/%v, %v/%v)",
			m.SetupWNS, m.SetupTNS, m.HoldWNS, m.HoldTNS,
			setupWNS, setupTNS, holdWNS, holdTNS)
	}

	for i, name := range names {
		_, body, err := httpGet(coord.url + "/endpoints?scenario=" + name + "&kind=setup&limit=5")
		if err != nil {
			return fmt.Errorf("cluster endpoints %s: %v", name, err)
		}
		// The proxy strips the worker encoder's trailing newline; the
		// payload itself must match byte for byte.
		if !bytes.Equal(bytes.TrimSpace(body), bytes.TrimSpace(refEndpoints[i])) {
			return fmt.Errorf("endpoints %s diverge from single node:\n  single: %s\n  cluster: %s",
				name, refEndpoints[i], body)
		}
	}
	return nil
}

// coordHandle / workerSet bundle the teardown of one booted cluster.
type coordHandle struct {
	c   *cluster.Coordinator
	hs  *httptest.Server
	url string
}

func (h coordHandle) close() { h.hs.Close(); h.c.Close() }

type workerSet []func()

func (w workerSet) close() {
	for _, f := range w {
		f()
	}
}

// bootCluster starts `shards` workers with round-robin scenario filters
// (scenario j on worker j%shards) behind a fresh coordinator and
// registers each over the wire.
func bootCluster(shards int, names []string,
	newWorker func([]string) (*timingd.Server, *httptest.Server, error)) (coordHandle, workerSet, error) {
	c, err := cluster.New(cluster.Config{
		Scenarios:         names,
		HeartbeatInterval: time.Hour, // the law drives membership explicitly
		RetryDelay:        time.Millisecond,
		Seed:              7,
	})
	if err != nil {
		return coordHandle{}, nil, err
	}
	chs := httptest.NewServer(c.Handler())
	coord := coordHandle{c: c, hs: chs, url: chs.URL}
	var workers workerSet
	for i := 0; i < shards; i++ {
		filter := []string{}
		for j := i; j < len(names); j += shards {
			filter = append(filter, names[j])
		}
		srv, hs, err := newWorker(filter)
		if err != nil {
			coord.close()
			workers.close()
			return coordHandle{}, nil, fmt.Errorf("worker %d boot: %v", i, err)
		}
		workers = append(workers, func() { hs.Close(); srv.Close() })
		reg, _ := json.Marshal(cluster.RegisterRequest{
			ID: fmt.Sprintf("w%d", i), URL: hs.URL,
			Epoch: srv.Epoch(), Scenarios: srv.ScenarioSet(),
		})
		code, body, err := httpPost(chs.URL+"/cluster/register", reg)
		if err != nil || code != 200 {
			coord.close()
			workers.close()
			return coordHandle{}, nil, fmt.Errorf("register w%d: %d %s (%v)", i, code, body, err)
		}
	}
	return coord, workers, nil
}

// clusterResizeOp finds a pin-compatible Vt swap in the fixture design.
func clusterResizeOp(rcp core.Recipe, d *netlist.Design) (timingd.Op, error) {
	lib := rcp.Scenarios[0].Lib
	for _, c := range d.Cells {
		m := lib.Cell(c.TypeName)
		if m == nil || m.IsSequential() || !strings.HasSuffix(c.TypeName, "_SVT") {
			continue
		}
		v := strings.TrimSuffix(c.TypeName, "_SVT") + "_LVT"
		if lib.Cell(v) != nil {
			return timingd.Op{Kind: "resize", Cell: c.Name, To: v}, nil
		}
	}
	return timingd.Op{}, fmt.Errorf("no resize target in cluster fixture")
}

func httpGet(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		return resp.StatusCode, body, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return resp.StatusCode, body, nil
}

func httpPost(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data, nil
}

func getJSON(url string, out any) error {
	_, body, err := httpGet(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}
