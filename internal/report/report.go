// Package report renders the tabular text output shared by the command-line
// tools and the experiment harness: fixed-width tables, simple ASCII
// scatter/series plots, and number formatting tuned for timing quantities.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v, floats with %.2f. Rows
// are clamped to the header count: missing cells render empty, surplus
// values are dropped (a surplus cell previously crashed Render, which
// sizes columns by header).
func (t *Table) Row(vals ...interface{}) {
	row := make([]string, len(t.headers))
	for i, v := range vals {
		if i >= len(row) {
			break
		}
		switch x := v.(type) {
		case float64:
			if math.Abs(x) >= 1000 {
				row[i] = fmt.Sprintf("%.0f", x)
			} else {
				row[i] = fmt.Sprintf("%.2f", x)
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Series renders an ASCII line/scatter of y versus x (sorted by x), for
// quick visual checks of experiment shapes in terminal output.
func Series(title string, xs, ys []float64, width, height int) string {
	if len(xs) == 0 || len(xs) != len(ys) || width < 8 || height < 3 {
		return ""
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		cx := int((xs[i] - minX) / (maxX - minX) * float64(width-1))
		cy := int((ys[i] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-cy][cx] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %.3g..%.3g, x: %.3g..%.3g]\n", title, minY, maxY, minX, maxX)
	for _, r := range grid {
		b.WriteString("  |")
		b.Write(r)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Ps formats picoseconds.
func Ps(x float64) string { return fmt.Sprintf("%.1f ps", x) }
