package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value", "unit")
	tb.Row("alpha", 3.14159, "ps")
	tb.Row("a-long-name", 123456.0, "fF")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("missing formatted float")
	}
	if !strings.Contains(out, "123456") {
		t.Error("large value should render without decimals")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
	// Columns aligned: rows padded to the widest first-column entry.
	if !strings.HasPrefix(lines[3], "alpha      ") {
		t.Errorf("alignment broken: %q", lines[3])
	}
}

func TestSeries(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	s := Series("quad", xs, ys, 20, 6)
	if !strings.Contains(s, "quad") || strings.Count(s, "*") == 0 {
		t.Errorf("plot missing points: %s", s)
	}
	if got := Series("bad", nil, nil, 20, 6); got != "" {
		t.Error("empty input should render nothing")
	}
	// Degenerate y-range must not panic.
	if s := Series("flat", []float64{1, 2}, []float64{5, 5}, 10, 3); s == "" {
		t.Error("flat series should render")
	}
}

func TestFormatHelpers(t *testing.T) {
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct = %s", Pct(0.5))
	}
	if Ps(12.34) != "12.3 ps" {
		t.Errorf("Ps = %s", Ps(12.34))
	}
}
