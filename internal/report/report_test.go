package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value", "unit")
	tb.Row("alpha", 3.14159, "ps")
	tb.Row("a-long-name", 123456.0, "fF")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("missing formatted float")
	}
	if !strings.Contains(out, "123456") {
		t.Error("large value should render without decimals")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
	// Columns aligned: rows padded to the widest first-column entry.
	if !strings.HasPrefix(lines[3], "alpha      ") {
		t.Errorf("alignment broken: %q", lines[3])
	}
}

// Rows with the wrong arity are clamped to the header count: short rows
// pad with empty cells, surplus cells are dropped. Render used to index
// past the header-sized widths slice and panic on surplus cells.
func TestTableRowMismatchedColumns(t *testing.T) {
	tb := NewTable("mismatch", "a", "b", "c")
	tb.Row("short")
	tb.Row("x", "y", "z", "surplus", "more")
	tb.Row()
	out := tb.String()
	if strings.Contains(out, "surplus") {
		t.Errorf("surplus cell rendered: %s", out)
	}
	// title, header, separator, 3 rows (the all-empty row renders as a
	// blank-padded line), then the final newline.
	lines := strings.Split(out, "\n")
	if len(lines) != 7 {
		t.Fatalf("expected 7 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "short") {
		t.Errorf("short row lost its cell: %q", lines[3])
	}
	if !strings.Contains(lines[4], "z") {
		t.Errorf("full row truncated too far: %q", lines[4])
	}
}

func TestSeriesDegenerate(t *testing.T) {
	// Empty and mismatched-length inputs render nothing rather than panic.
	if got := Series("empty", []float64{}, []float64{}, 20, 6); got != "" {
		t.Errorf("empty series rendered %q", got)
	}
	if got := Series("mismatch", []float64{1, 2}, []float64{1}, 20, 6); got != "" {
		t.Errorf("length-mismatched series rendered %q", got)
	}
	// A single point has zero x- and y-range; both get widened to avoid
	// divide-by-zero and the point still plots.
	s := Series("one", []float64{3}, []float64{7}, 12, 4)
	if s == "" || strings.Count(s, "*") != 1 {
		t.Errorf("single-point series: %q", s)
	}
	// Tiny canvas sizes are rejected.
	if got := Series("tiny", []float64{1}, []float64{1}, 4, 2); got != "" {
		t.Errorf("undersized canvas rendered %q", got)
	}
}

func TestSeries(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	s := Series("quad", xs, ys, 20, 6)
	if !strings.Contains(s, "quad") || strings.Count(s, "*") == 0 {
		t.Errorf("plot missing points: %s", s)
	}
	if got := Series("bad", nil, nil, 20, 6); got != "" {
		t.Error("empty input should render nothing")
	}
	// Degenerate y-range must not panic.
	if s := Series("flat", []float64{1, 2}, []float64{5, 5}, 10, 3); s == "" {
		t.Error("flat series should render")
	}
}

func TestFormatHelpers(t *testing.T) {
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct = %s", Pct(0.5))
	}
	if Ps(12.34) != "12.3 ps" {
		t.Errorf("Ps = %s", Ps(12.34))
	}
}
