// The obs package renders its run summary through report.Table, so obs
// imports report and this test must live in the external test package to
// exercise the two together without an import cycle.
package report_test

import (
	"strings"
	"testing"

	"newgame/internal/obs"
)

func TestObsSummaryRendersAsReportTables(t *testing.T) {
	rec := obs.NewRecorder()
	root := rec.Start("close.old_goal_posts", nil)
	rec.Start("scenario:func_ss_cw", root).OnTrack(1).End()
	root.End()
	rec.Counter("sta.update.full_run_fallback")
	rec.Counter("core.worker_00.scenarios").Add(1)
	rec.Gauge("close.total_violations").Set(12)
	rec.Histogram("sta.update.cone_vertices", 4, 16).Observe(9)

	var b strings.Builder
	rec.WriteSummary(&b)
	out := b.String()

	for _, frag := range []string{
		"== obs spans",
		"== obs metrics ==",
		"close.old_goal_posts",
		"scenario:func_ss_cw",
		"sta.update.full_run_fallback",
		"counter",
		"gauge",
		"histogram",
		"n=1",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, out)
		}
	}

	// Both tables carry a header/separator pair: the separator line of a
	// report table is all dashes and spaces.
	seps := 0
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && strings.Trim(trimmed, "- ") == "" {
			seps++
		}
	}
	if seps != 2 {
		t.Fatalf("expected 2 table separators, got %d:\n%s", seps, out)
	}
}
