package opt

import (
	"math/rand"
	"testing"

	"newgame/internal/circuits"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/place"
	"newgame/internal/sta"
)

func lib() *liberty.Library {
	return liberty.Generate(liberty.Node16,
		liberty.PVT{Process: liberty.SSG, Voltage: 0.72, Temp: 125}, liberty.GenOptions{})
}

// testCtx builds a block with a deliberately tight clock so fixes have
// violations to chew on. allHVT seeds the netlist slow to give Vt swap room.
func testCtx(t *testing.T, l *liberty.Library, period float64, seed int64) *Context {
	t.Helper()
	d := circuits.Block(l, circuits.BlockSpec{
		Name: "opt", Inputs: 16, Outputs: 16, FFs: 64, Gates: 900,
		MaxDepth: 12, Seed: seed, ClockBufferLevels: 2,
		VtMix: [3]float64{0, 0.3, 0.7}, // mostly HVT: slow start
	})
	cons := sta.NewConstraints()
	cons.AddClock("clk", period, d.Port("clk"))
	store := NewStore(sta.NewNetBinder(parasitics.Stack16(), seed))
	a, err := sta.New(d, cons, sta.Config{
		Lib: l, Parasitics: store.Fn(), Derate: sta.DefaultAOCV(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	return &Context{A: a, Lib: l, Store: store}
}

func TestVtSwapImprovesTiming(t *testing.T) {
	l := lib()
	ctx := testCtx(t, l, 380, 3)
	rep, err := VtSwap(ctx, VtSwapOptions{MaxMoves: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNSBefore >= 0 {
		t.Fatal("test design not violating; tighten the period")
	}
	if rep.Changed == 0 {
		t.Fatal("no swaps applied")
	}
	if rep.WNSAfter <= rep.WNSBefore {
		t.Errorf("WNS did not improve: %v -> %v", rep.WNSBefore, rep.WNSAfter)
	}
	if rep.LeakageDelta <= 0 {
		t.Errorf("Vt swap toward LVT must cost leakage, got %v", rep.LeakageDelta)
	}
}

func TestVtSwapPreservesLogic(t *testing.T) {
	l := lib()
	ctx := testCtx(t, l, 380, 4)
	d := ctx.A.D
	sim, err := circuits.NewSimulator(d, l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ins := map[string]bool{}
	for _, p := range d.Ports {
		if p.Dir == netlist.Input {
			ins[p.Name] = rng.Intn(2) == 1
		}
	}
	before, _ := sim.Eval(ins, circuits.State{})
	outBefore := sim.Outputs(before)
	if _, err := VtSwap(ctx, VtSwapOptions{MaxMoves: 300}); err != nil {
		t.Fatal(err)
	}
	sim2, err := circuits.NewSimulator(d, l)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := sim2.Eval(ins, circuits.State{})
	outAfter := sim2.Outputs(after)
	for name, v := range outBefore {
		if outAfter[name] != v {
			t.Fatalf("output %s changed after Vt swap", name)
		}
	}
}

func TestResizeImprovesTiming(t *testing.T) {
	l := lib()
	ctx := testCtx(t, l, 380, 5)
	rep, err := Resize(ctx, DefaultResize())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed == 0 {
		t.Fatal("no resizes applied")
	}
	if rep.WNSAfter < rep.WNSBefore {
		t.Errorf("resize made WNS worse and kept it: %v -> %v", rep.WNSBefore, rep.WNSAfter)
	}
	if rep.AreaDelta <= 0 {
		t.Errorf("upsizing must cost area, got %v", rep.AreaDelta)
	}
}

func TestMinIAAwareVsBlindSwap(t *testing.T) {
	// The §2.4 ablation: MinIA-blind Vt swap creates implant violations;
	// the aware variant does not.
	l := lib()
	run := func(aware bool, seed int64) int {
		ctx := testCtx(t, l, 380, seed)
		p, err := place.New(ctx.A.D, l, 300, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Clean the initial placement's violations so we measure only
		// swap-created ones.
		p.FixMinIA(place.DefaultFixOptions())
		base := len(p.Violations(place.DefaultMinIA))
		ctx.Place = p
		if _, err := VtSwap(ctx, VtSwapOptions{MaxMoves: 300, MinIAAware: aware, Rule: place.DefaultMinIA}); err != nil {
			t.Fatal(err)
		}
		return len(p.Violations(place.DefaultMinIA)) - base
	}
	blind := run(false, 6)
	aware := run(true, 6)
	if blind <= 0 {
		t.Fatalf("blind swap created %d violations; expected some", blind)
	}
	if aware > 0 {
		t.Errorf("aware swap created %d violations; expected none", aware)
	}
}

func TestLeakageRecovery(t *testing.T) {
	l := lib()
	// Relaxed clock: plenty of slack to spend.
	ctx := testCtx(t, l, 1200, 7)
	rep, err := LeakageRecovery(ctx, 150, 400)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed == 0 {
		t.Fatal("no cells downswapped despite huge slack")
	}
	if rep.LeakageDelta >= 0 {
		t.Errorf("leakage recovery must save leakage, got %v", rep.LeakageDelta)
	}
	if rep.WNSAfter < 0 {
		t.Errorf("recovery broke timing: WNS %v", rep.WNSAfter)
	}
}

func TestFixDRC(t *testing.T) {
	l := lib()
	// Build a design with deliberate fanout abuse.
	d := netlist.New("drc")
	in, _ := d.AddPort("in", netlist.Input)
	drv, err := circuits.AddCell(d, l, "drv", "INV_X1_HVT")
	if err != nil {
		t.Fatal(err)
	}
	big, _ := d.AddNet("big")
	if err := d.Connect(drv, "A", in.Net); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(drv, "Z", big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c, _ := circuits.AddCell(d, l, d.FreshName("s"), "INV_X2_SVT")
		if err := d.Connect(c, "A", big); err != nil {
			t.Fatal(err)
		}
		o, _ := d.AddNet(d.FreshName("o"))
		if err := d.Connect(c, "Z", o); err != nil {
			t.Fatal(err)
		}
	}
	cons := sta.NewConstraints()
	a, err := sta.New(d, cons, sta.Config{Lib: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{A: a, Lib: l}
	before := len(a.DRCViolations())
	if before == 0 {
		t.Fatal("no DRC violations to fix")
	}
	rep, err := FixDRC(ctx, DefaultBuffer())
	if err != nil {
		t.Fatal(err)
	}
	after := len(ctx.A.DRCViolations())
	if after >= before {
		t.Errorf("DRC violations %d -> %d; no progress", before, after)
	}
	if rep.Changed == 0 {
		t.Error("no buffers inserted")
	}
	if errs := ctx.A.D.Validate(); len(errs) != 0 {
		t.Fatalf("netlist broken after DRC fix: %v", errs[0])
	}
}

func TestApplyNDRImprovesWireDelay(t *testing.T) {
	l := lib()
	ctx := testCtx(t, l, 380, 8)
	rep, err := ApplyNDR(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed == 0 {
		t.Skip("no NDR candidates on this seed")
	}
	if rep.WNSAfter < rep.WNSBefore-1e-9 {
		t.Errorf("NDR made timing worse: %v -> %v", rep.WNSBefore, rep.WNSAfter)
	}
}

func TestFixHold(t *testing.T) {
	l := lib()
	// Direct FF-to-FF race with a hold-hostile constraint.
	d := netlist.New("hold")
	clk, _ := d.AddPort("clk", netlist.Input)
	din, _ := d.AddPort("din", netlist.Input)
	prev := din.Net
	var ffs []*netlist.Cell
	for i := 0; i < 6; i++ {
		ff, err := circuits.AddCell(d, l, d.FreshName("ff"), "DFF_X1_SVT")
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(ff, "CK", clk.Net); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(ff, "D", prev); err != nil {
			t.Fatal(err)
		}
		q, _ := d.AddNet(d.FreshName("q"))
		if err := d.Connect(ff, "Q", q); err != nil {
			t.Fatal(err)
		}
		prev = q
		ffs = append(ffs, ff)
	}
	cons := sta.NewConstraints()
	ck := cons.AddClock("clk", 600, clk)
	ck.HoldUncertainty = 15 // force hold violations on the shift chain
	a, err := sta.New(d, cons, sta.Config{Lib: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{A: a, Lib: l}
	if a.WorstSlack(sta.Hold) >= 0 {
		t.Skip("no hold violations with this library; model margin too large")
	}
	rep, err := FixHold(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNSAfter <= rep.WNSBefore {
		t.Errorf("hold WNS did not improve: %v -> %v", rep.WNSBefore, rep.WNSAfter)
	}
	if ctx.A.WorstSlack(sta.Setup) < 0 {
		t.Error("hold fixing broke setup")
	}
}

func TestNoiseFixReducesViolations(t *testing.T) {
	l := lib()
	// Deterministic victim: a weak driver on a long, heavily coupled wire.
	d := netlist.New("noise")
	in, _ := d.AddPort("in", netlist.Input)
	drv, err := circuits.AddCell(d, l, "drv", "INV_X1_HVT")
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := d.AddNet("victim")
	if err := d.Connect(drv, "A", in.Net); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(drv, "Z", victim); err != nil {
		t.Fatal(err)
	}
	sink, _ := circuits.AddCell(d, l, "sink", "INV_X1_SVT")
	if err := d.Connect(sink, "A", victim); err != nil {
		t.Fatal(err)
	}
	so, _ := d.AddNet("so")
	if err := d.Connect(sink, "Z", so); err != nil {
		t.Fatal(err)
	}
	st := parasitics.Stack16()
	base := func(n *netlist.Net) *parasitics.Tree {
		if n == victim {
			return parasitics.PointToPoint(st, 1, 600, 0.85)
		}
		return nil
	}
	store := NewStore(base)
	cons := sta.NewConstraints()
	a, err := sta.New(d, cons, sta.Config{Lib: l, SI: sta.DefaultSI(), Parasitics: store.Fn()})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{A: a, Lib: l, Store: store}
	before := len(ctx.A.NoiseViolations())
	if before == 0 {
		t.Fatal("constructed victim not flagged; noise model inert")
	}
	if _, err := FixNoise(ctx, 60); err != nil {
		t.Fatal(err)
	}
	after := len(ctx.A.NoiseViolations())
	if after >= before {
		t.Errorf("noise violations %d -> %d", before, after)
	}
	// The fix should have used both levers: driver upsize and NDR.
	if !ctx.Store.HasNDR(victim) {
		t.Error("victim net did not receive an NDR")
	}
	if m := l.Cell(drv.TypeName); m.Drive <= 1 {
		t.Error("victim driver not upsized")
	}
}

func TestAreaRecovery(t *testing.T) {
	l := lib()
	// Healthy all-SVT design with generous period: downsizing headroom in
	// both slack and slew (testCtx's HVT-heavy mix is slew-marginal, where
	// the verified recovery rightly refuses to act).
	d := circuits.Block(l, circuits.BlockSpec{
		Name: "area", Inputs: 16, Outputs: 16, FFs: 48, Gates: 700,
		MaxDepth: 10, Seed: 21, ClockBufferLevels: 2,
	})
	cons := sta.NewConstraints()
	cons.AddClock("clk", 1400, d.Port("clk"))
	a, err := sta.New(d, cons, sta.Config{Lib: l,
		Parasitics: sta.NewNetBinder(parasitics.Stack16(), 21)})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{A: a, Lib: l}
	rep, err := AreaRecovery(ctx, 150, 300)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed == 0 {
		t.Fatal("no cells downsized despite huge slack")
	}
	if rep.AreaDelta >= 0 {
		t.Errorf("area recovery must save area, got %v", rep.AreaDelta)
	}
	if rep.WNSAfter < 0 {
		t.Errorf("area recovery broke timing: WNS %v", rep.WNSAfter)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Pass: "vt_swap", Changed: 7, WNSBefore: -12.5, WNSAfter: -3.25}
	s := rep.String()
	if s == "" || len(s) < 20 {
		t.Errorf("report string too thin: %q", s)
	}
}

func TestDefaultOptionCtors(t *testing.T) {
	v := DefaultVtSwap()
	if v.MaxMoves <= 0 || !v.MinIAAware {
		t.Errorf("DefaultVtSwap = %+v", v)
	}
	r := DefaultResize()
	if r.MaxMoves <= 0 || r.Iterations <= 0 {
		t.Errorf("DefaultResize = %+v", r)
	}
	b := DefaultBuffer()
	if b.BufMaster == "" || b.MaxFixes <= 0 {
		t.Errorf("DefaultBuffer = %+v", b)
	}
}

func TestStoreNDRAccessors(t *testing.T) {
	st := NewStore(func(*netlist.Net) *parasitics.Tree { return nil })
	d := netlist.New("x")
	n, _ := d.AddNet("n")
	if st.HasNDR(n) {
		t.Error("fresh store has rules")
	}
	if _, ok := st.NDROf(n); ok {
		t.Error("NDROf on empty store")
	}
	st.SetNDR(n, WideSpaced)
	if r, ok := st.NDROf(n); !ok || r.Name != WideSpaced.Name {
		t.Error("rule lost")
	}
	// Nil base tree passes through.
	if st.Fn()(n) != nil {
		t.Error("nil tree should stay nil")
	}
}
