package opt

import (
	"math"
	"sort"

	"newgame/internal/netlist"
	"newgame/internal/sta"
)

// ResizeOptions tunes gate sizing.
type ResizeOptions struct {
	MaxMoves int
	// Iterations of size-recompute-size.
	Iterations int
}

// DefaultResize is the standard recipe.
func DefaultResize() ResizeOptions { return ResizeOptions{MaxMoves: 300, Iterations: 5} }

// Resize upsizes drivers on violating paths one drive step at a time,
// re-timing between batches and reverting a batch that made WNS worse
// (upsizing raises input cap, which can backfire on the upstream stage —
// the classic sizing ping-pong).
func Resize(ctx *Context, opts ResizeOptions) (Report, error) {
	rep := Report{Pass: "resize"}
	if err := ctx.A.Run(); err != nil {
		return rep, err
	}
	rep.WNSBefore = ctx.A.WorstSlack(sta.Setup)
	rep.TNSBefore = ctx.A.TNS(sta.Setup)
	for iter := 0; iter < opts.Iterations && rep.Changed < opts.MaxMoves; iter++ {
		prevWNS := ctx.A.WorstSlack(sta.Setup)
		prevTNS := ctx.A.TNS(sta.Setup)
		cands := negativeSlackCells(ctx)
		if len(cands) == 0 {
			break
		}
		type move struct {
			c        *netlist.Cell
			from, to string
		}
		var batch []move
		for _, c := range cands {
			if rep.Changed+len(batch) >= opts.MaxMoves || len(batch) >= 40 {
				break
			}
			m := ctx.Lib.Cell(c.TypeName)
			drives := ctx.Lib.Drives(m.Function)
			next := -1.0
			for _, d := range drives {
				if d > m.Drive {
					next = d
					break
				}
			}
			if next < 0 {
				continue
			}
			variant := ctx.Lib.Variant(m, next, m.Vt)
			if variant == nil {
				continue
			}
			batch = append(batch, move{c, c.TypeName, variant.Name})
		}
		if len(batch) == 0 {
			break
		}
		for _, mv := range batch {
			from := ctx.Lib.Cell(mv.from)
			to := ctx.Lib.Cell(mv.to)
			rep.AreaDelta += to.Area - from.Area
			rep.LeakageDelta += to.Leakage - from.Leakage
			mv.c.SetType(mv.to)
			ctx.A.InvalidateCell(mv.c)
		}
		if err := ctx.A.Update(); err != nil {
			return rep, err
		}
		if ctx.A.WorstSlack(sta.Setup) < prevWNS-1e-9 && ctx.A.TNS(sta.Setup) < prevTNS {
			// Batch hurt: revert and stop.
			for _, mv := range batch {
				from := ctx.Lib.Cell(mv.from)
				to := ctx.Lib.Cell(mv.to)
				rep.AreaDelta -= to.Area - from.Area
				rep.LeakageDelta -= to.Leakage - from.Leakage
				mv.c.SetType(mv.from)
				ctx.A.InvalidateCell(mv.c)
			}
			if err := ctx.A.Update(); err != nil {
				return rep, err
			}
			break
		}
		rep.Changed += len(batch)
	}
	rep.WNSAfter = ctx.A.WorstSlack(sta.Setup)
	rep.TNSAfter = ctx.A.TNS(sta.Setup)
	return rep, nil
}

// AreaRecovery downsizes cells with comfortable slack (run after closure,
// paired with LeakageRecovery). Moves are applied in verified batches that
// revert when timing or DRC degrades — downsizing a loaded driver can cost
// far more than any per-cell slack heuristic predicts.
func AreaRecovery(ctx *Context, slackFloor float64, maxMoves int) (Report, error) {
	rep := Report{Pass: "area_recover"}
	tried := map[*netlist.Cell]bool{}
	pick := func(limit int) []recoveryMove {
		if rep.Changed >= maxMoves {
			return nil
		}
		type cs struct {
			c *netlist.Cell
			s float64
		}
		var cands []cs
		for _, c := range ctx.A.D.Cells {
			m := ctx.Lib.Cell(c.TypeName)
			if tried[c] || m.IsSequential() {
				continue
			}
			if s := ctx.A.CellSetupSlack(c); !math.IsInf(s, 0) && s > slackFloor {
				cands = append(cands, cs{c, s})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].s > cands[j].s })
		var batch []recoveryMove
		for _, x := range cands {
			if len(batch) >= limit || rep.Changed+len(batch) >= maxMoves {
				break
			}
			m := ctx.Lib.Cell(x.c.TypeName)
			drives := ctx.Lib.Drives(m.Function)
			prev := -1.0
			for _, d := range drives {
				if d < m.Drive {
					prev = d
				}
			}
			if prev < 0 {
				continue
			}
			variant := ctx.Lib.Variant(m, prev, m.Vt)
			if variant == nil {
				continue
			}
			tried[x.c] = true
			batch = append(batch, recoveryMove{c: x.c, from: x.c.TypeName, to: variant.Name})
		}
		return batch
	}
	err := runRecovery(ctx, &rep, pick)
	return rep, err
}
