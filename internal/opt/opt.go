// Package opt implements the timing-closure fix arsenal in the order the
// paper's Figure 1 recommends ("apply simplest optimizations first:
// Vt-swap first, followed by gate sizing, buffer insertion, non-default
// routing rule application, and useful skew"), plus the DRC/noise fixes of
// the final manual-ECO phase, leakage recovery, and the MinIA-aware swap
// variant that §2.4 shows is mandatory below 20nm.
package opt

import (
	"fmt"
	"math"
	"sort"

	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/place"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// Context carries the design state a fix pass operates on.
type Context struct {
	A   *sta.Analyzer
	Lib *liberty.Library
	// Place, when non-nil, enables MinIA-aware Vt moves (paper §2.4: below
	// 20nm, post-route Vt swap is no longer placement-independent).
	Place *place.Placement
	// Store, when non-nil, enables NDR assignment.
	Store *Store
	// SetupGuard, when non-nil, is a second analysis view (typically the
	// slow setup corner) that hold fixing must not break — the cross-corner
	// ping-pong guard of paper §2.3 ("fix timing violations without
	// ping-pong effects across multiple modes and/or corners").
	SetupGuard *sta.Analyzer
	// Verify, when non-nil, is the caller's cross-scenario acceptance test
	// run after each recovery batch (e.g. a full MCMM re-survey): a false
	// return reverts the batch. Local single-view checks still apply.
	Verify func() bool
}

// Report summarizes one fix pass.
type Report struct {
	Pass    string
	Changed int
	// WNS/TNS before and after (setup unless the pass is hold-directed).
	WNSBefore, WNSAfter units.Ps
	TNSBefore, TNSAfter units.Ps
	// LeakageDelta (nW) and AreaDelta (µm²) record the cost.
	LeakageDelta float64
	AreaDelta    float64
	// MinIACreated counts implant violations introduced (MinIA-blind
	// moves) or left behind.
	MinIACreated int
}

func (r Report) String() string {
	return fmt.Sprintf("%-12s changed=%-4d WNS %7.1f -> %7.1f  TNS %8.1f -> %8.1f",
		r.Pass, r.Changed, r.WNSBefore, r.WNSAfter, r.TNSBefore, r.TNSAfter)
}

// vtFaster returns the next faster Vt class, or -1.
func vtFaster(v liberty.VtClass) liberty.VtClass {
	switch v {
	case liberty.HVT:
		return liberty.SVT
	case liberty.SVT:
		return liberty.LVT
	}
	return -1
}

// vtSlower returns the next slower Vt class, or -1.
func vtSlower(v liberty.VtClass) liberty.VtClass {
	switch v {
	case liberty.LVT:
		return liberty.SVT
	case liberty.SVT:
		return liberty.HVT
	}
	return -1
}

// VtSwapOptions tunes the timing-driven swap.
type VtSwapOptions struct {
	// MaxMoves bounds swaps per invocation.
	MaxMoves int
	// MinIAAware rejects swaps that would create implant violations
	// (requires ctx.Place).
	MinIAAware bool
	// Rule is the implant rule used when MinIAAware.
	Rule place.MinIARule
}

// DefaultVtSwap is the standard recipe.
func DefaultVtSwap() VtSwapOptions {
	return VtSwapOptions{MaxMoves: 200, MinIAAware: true, Rule: place.DefaultMinIA}
}

// VtSwap speeds up negative-slack cells by stepping them toward LVT — the
// first and cheapest fix (no placement or routing disturbance... until
// MinIA makes it placement-dependent).
func VtSwap(ctx *Context, opts VtSwapOptions) (Report, error) {
	rep := Report{Pass: "vt_swap"}
	if err := ctx.A.Run(); err != nil {
		return rep, err
	}
	rep.WNSBefore = ctx.A.WorstSlack(sta.Setup)
	rep.TNSBefore = ctx.A.TNS(sta.Setup)
	var baseViol int
	if ctx.Place != nil {
		baseViol = len(ctx.Place.Violations(opts.Rule))
	}
	for iter := 0; iter < 6 && rep.Changed < opts.MaxMoves; iter++ {
		cands := negativeSlackCells(ctx)
		if len(cands) == 0 {
			break
		}
		moved := 0
		for _, c := range cands {
			if rep.Changed >= opts.MaxMoves {
				break
			}
			m := ctx.Lib.Cell(c.TypeName)
			faster := vtFaster(m.Vt)
			if faster < 0 {
				continue
			}
			variant := ctx.Lib.Variant(m, m.Drive, faster)
			if variant == nil {
				continue
			}
			if opts.MinIAAware && ctx.Place != nil {
				if createsMinIA(ctx.Place, c, variant.Name, opts.Rule) {
					continue
				}
			}
			rep.LeakageDelta += variant.Leakage - m.Leakage
			rep.AreaDelta += variant.Area - m.Area
			c.SetType(variant.Name)
			ctx.A.InvalidateCell(c)
			rep.Changed++
			moved++
		}
		if moved == 0 {
			break
		}
		// Master swaps are non-structural: incremental re-timing only
		// touches the swapped cells' cones instead of the whole graph.
		if err := ctx.A.Update(); err != nil {
			return rep, err
		}
	}
	rep.WNSAfter = ctx.A.WorstSlack(sta.Setup)
	rep.TNSAfter = ctx.A.TNS(sta.Setup)
	if ctx.Place != nil {
		rep.MinIACreated = len(ctx.Place.Violations(opts.Rule)) - baseViol
	}
	return rep, nil
}

// createsMinIA checks whether retyping cell c to master would leave an
// implant violation in c's row (trial change, scan, revert).
func createsMinIA(p *place.Placement, c *netlist.Cell, master string, rule place.MinIARule) bool {
	old := c.TypeName
	c.SetType(master)
	bad := rowHasViolationWith(p, c, rule)
	c.SetType(old)
	return bad
}

func rowHasViolationWith(p *place.Placement, c *netlist.Cell, rule place.MinIARule) bool {
	loc := p.Loc(c)
	if loc == nil {
		return false
	}
	for _, v := range p.Violations(rule) {
		if v.Row == loc.Row {
			return true
		}
	}
	return false
}

// negativeSlackCells returns combinational cells on violating paths, worst
// slack first, deduplicated.
func negativeSlackCells(ctx *Context) []*netlist.Cell {
	type cs struct {
		c *netlist.Cell
		s float64
	}
	var cands []cs
	seen := map[*netlist.Cell]bool{}
	for _, p := range ctx.A.WorstPaths(sta.Setup, 40) {
		if p.GBASlack >= 0 {
			break
		}
		for _, st := range p.Steps {
			if !st.IsCell || st.Cell == nil || seen[st.Cell] {
				continue
			}
			m := ctx.Lib.Cell(st.Cell.TypeName)
			if m.IsSequential() {
				continue
			}
			seen[st.Cell] = true
			cands = append(cands, cs{st.Cell, p.GBASlack})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].s < cands[j].s })
	out := make([]*netlist.Cell, len(cands))
	for i, x := range cands {
		out[i] = x.c
	}
	return out
}

// recoveryMove is one candidate downgrade with its revert data.
type recoveryMove struct {
	c        *netlist.Cell
	from, to string
}

// runRecovery is the shared batched engine under leakage and area
// recovery: apply a batch of downgrades, re-time, and revert the whole
// batch if setup WNS dips below the safety floor or DRC violations grow —
// per-cell slack floors do not compose along shared paths, so verification
// is the only safe acceptance test.
func runRecovery(ctx *Context, rep *Report, pick func(limit int) []recoveryMove) error {
	if err := ctx.A.Run(); err != nil {
		return err
	}
	rep.WNSBefore = ctx.A.WorstSlack(sta.Setup)
	rep.TNSBefore = ctx.A.TNS(sta.Setup)
	// Recovery may spend slack down to a small positive guard, but must
	// never push a met design into violation nor worsen an unmet one.
	const guard = 0.5
	floorWNS := math.Min(rep.WNSBefore, guard)
	floorHold := math.Min(ctx.A.WorstSlack(sta.Hold), 0)
	baseDRC := len(ctx.A.DRCViolations())
	batchSize := 40
	for iter := 0; iter < 40 && batchSize >= 1; iter++ {
		batch := pick(batchSize)
		if len(batch) == 0 {
			break
		}
		var dLeak, dArea float64
		for _, mv := range batch {
			from := ctx.Lib.Cell(mv.from)
			to := ctx.Lib.Cell(mv.to)
			dLeak += to.Leakage - from.Leakage
			dArea += to.Area - from.Area
			mv.c.SetType(mv.to)
			ctx.A.InvalidateCell(mv.c)
		}
		if err := ctx.A.Update(); err != nil {
			return err
		}
		bad := ctx.A.WorstSlack(sta.Setup) < floorWNS-1e-9 ||
			ctx.A.WorstSlack(sta.Hold) < floorHold-1e-9 ||
			len(ctx.A.DRCViolations()) > baseDRC
		if !bad && ctx.Verify != nil {
			bad = !ctx.Verify()
		}
		if bad {
			// Revert and shrink the batch to isolate safe moves.
			for _, mv := range batch {
				mv.c.SetType(mv.from)
				ctx.A.InvalidateCell(mv.c)
			}
			if err := ctx.A.Update(); err != nil {
				return err
			}
			batchSize /= 2
			continue
		}
		rep.LeakageDelta += dLeak
		rep.AreaDelta += dArea
		rep.Changed += len(batch)
	}
	rep.WNSAfter = ctx.A.WorstSlack(sta.Setup)
	rep.TNSAfter = ctx.A.TNS(sta.Setup)
	return nil
}

// LeakageRecovery downswaps cells with comfortable slack toward HVT —
// the power-recovery flipside run after timing is met ("relentless pursuit
// of margin recovery", paper §1.3). Moves are applied in verified batches.
func LeakageRecovery(ctx *Context, slackFloor units.Ps, maxMoves int) (Report, error) {
	rep := Report{Pass: "leak_recover"}
	tried := map[*netlist.Cell]bool{}
	pick := func(limit int) []recoveryMove {
		if rep.Changed >= maxMoves {
			return nil
		}
		type cs struct {
			c *netlist.Cell
			s float64
		}
		var cands []cs
		for _, c := range ctx.A.D.Cells {
			m := ctx.Lib.Cell(c.TypeName)
			if tried[c] || m.IsSequential() || vtSlower(m.Vt) < 0 {
				continue
			}
			s := ctx.A.CellSetupSlack(c)
			if !math.IsInf(s, 0) && s > slackFloor {
				cands = append(cands, cs{c, s})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].s > cands[j].s })
		var batch []recoveryMove
		for _, x := range cands {
			if len(batch) >= limit || rep.Changed+len(batch) >= maxMoves {
				break
			}
			m := ctx.Lib.Cell(x.c.TypeName)
			variant := ctx.Lib.Variant(m, m.Drive, vtSlower(m.Vt))
			if variant == nil {
				continue
			}
			if ctx.Place != nil && createsMinIA(ctx.Place, x.c, variant.Name, place.DefaultMinIA) {
				continue
			}
			tried[x.c] = true
			batch = append(batch, recoveryMove{c: x.c, from: x.c.TypeName, to: variant.Name})
		}
		return batch
	}
	err := runRecovery(ctx, &rep, pick)
	return rep, err
}

// Store wraps a parasitics binder with per-net non-default-rule overrides.
type Store struct {
	base func(*netlist.Net) *parasitics.Tree
	ndr  map[*netlist.Net]NDR
}

// NDR is a non-default routing rule.
type NDR struct {
	Name string
	// R/C/Cc multipliers relative to default-rule routing.
	R, C, Cc float64
}

// WideSpaced is the classic 2W2S rule: half the resistance, modestly more
// ground cap, much less coupling.
var WideSpaced = NDR{Name: "2W2S", R: 0.52, C: 1.12, Cc: 0.45}

// Shielded adds grounded shield wires alongside the net: coupling nearly
// eliminated, ground cap up — the escalation for nets whose coupling
// fraction no spacing rule can save.
var Shielded = NDR{Name: "shield", R: 0.52, C: 1.30, Cc: 0.10}

// NDROf returns the net's rule, if any.
func (s *Store) NDROf(n *netlist.Net) (NDR, bool) { r, ok := s.ndr[n]; return r, ok }

// NewStore wraps a base binder.
func NewStore(base func(*netlist.Net) *parasitics.Tree) *Store {
	return &Store{base: base, ndr: map[*netlist.Net]NDR{}}
}

// Warm touches every net through the base binder, in order. A stateful
// binder (the seeded NetGen cache) assigns trees in call order, so warming
// serially before concurrent scenario analyzers share the store keeps tree
// assignment — and therefore every timing number — deterministic.
func (s *Store) Warm(nets []*netlist.Net) {
	for _, n := range nets {
		s.base(n)
	}
}

// Fn returns the binder function to hand to sta.Config.
func (s *Store) Fn() func(*netlist.Net) *parasitics.Tree {
	return func(n *netlist.Net) *parasitics.Tree {
		t := s.base(n)
		if t == nil {
			return nil
		}
		if rule, ok := s.ndr[n]; ok {
			return t.ScaledCopy(rule.R, rule.C, rule.Cc)
		}
		return t
	}
}

// SetNDR assigns a rule to a net.
func (s *Store) SetNDR(n *netlist.Net, rule NDR) { s.ndr[n] = rule }

// HasNDR reports whether a net carries a rule.
func (s *Store) HasNDR(n *netlist.Net) bool { _, ok := s.ndr[n]; return ok }
