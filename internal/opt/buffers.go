package opt

import (
	"sort"

	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/sta"
	"newgame/internal/units"
)

// BufferOptions tunes DRC and high-fanout buffering.
type BufferOptions struct {
	// BufMaster is the inserted buffer (default BUF_X4_SVT).
	BufMaster string
	// MaxFixes bounds insertions per invocation.
	MaxFixes int
}

// DefaultBuffer is the standard recipe.
func DefaultBuffer() BufferOptions {
	return BufferOptions{BufMaster: liberty.CellName("BUF", 4, liberty.SVT), MaxFixes: 120}
}

// FixDRC repairs max-capacitance and max-transition violations by splitting
// overloaded nets behind buffers — the bread-and-butter of the paper's
// "last set of several hundred manual noise and DRC fixes", automated.
func FixDRC(ctx *Context, opts BufferOptions) (Report, error) {
	rep := Report{Pass: "drc_fix"}
	if err := ctx.A.Run(); err != nil {
		return rep, err
	}
	rep.WNSBefore = float64(len(ctx.A.DRCViolations())) // count, not ps, for this pass
	buf := ctx.Lib.Cell(opts.BufMaster)
	for iter := 0; iter < 8; iter++ {
		viols := ctx.A.DRCViolations()
		if len(viols) == 0 || rep.Changed >= opts.MaxFixes {
			break
		}
		fixed := 0
		seenNet := map[*netlist.Net]bool{}
		for _, v := range viols {
			if rep.Changed >= opts.MaxFixes {
				break
			}
			var net *netlist.Net
			if v.Kind == "max_cap" {
				net = v.Pin.Net
			} else {
				// max_tran at an input pin: fix the driving net.
				net = v.Pin.Net
			}
			if net == nil || seenNet[net] {
				continue
			}
			seenNet[net] = true
			// First choice: a stronger driver (faster edge, no structural
			// change).
			if drv := net.Driver; drv != nil {
				m := ctx.Lib.Cell(drv.Cell.TypeName)
				upsized := false
				for _, dr := range ctx.Lib.Drives(m.Function) {
					if dr > m.Drive {
						if variant := ctx.Lib.Variant(m, dr, m.Vt); variant != nil {
							rep.AreaDelta += variant.Area - m.Area
							rep.LeakageDelta += variant.Leakage - m.Leakage
							drv.Cell.SetType(variant.Name)
							rep.Changed++
							fixed++
							upsized = true
						}
						break
					}
				}
				if upsized {
					continue
				}
			}
			// Driver maxed (or a port): split the load behind a buffer.
			if len(net.Loads) >= 2 {
				half := len(net.Loads) / 2
				moved := append([]*netlist.Pin(nil), net.Loads[half:]...)
				if _, err := ctx.A.D.InsertBuffer(net, moved, buf.Name); err != nil {
					return rep, err
				}
				rep.AreaDelta += buf.Area
				rep.LeakageDelta += buf.Leakage
				rep.Changed++
				fixed++
				continue
			}
			// Last resort: improve the wire itself (repeater-class NDR).
			if ctx.Store != nil && !ctx.Store.HasNDR(net) {
				ctx.Store.SetNDR(net, WideSpaced)
				rep.Changed++
				fixed++
			}
		}
		if fixed == 0 {
			break
		}
		// Netlist changed: rebuild the analysis graph.
		na, err := sta.New(ctx.A.D, ctx.A.Cons, ctx.A.Cfg)
		if err != nil {
			return rep, err
		}
		ctx.A = na
		if err := ctx.A.Run(); err != nil {
			return rep, err
		}
	}
	rep.WNSAfter = float64(len(ctx.A.DRCViolations()))
	return rep, nil
}

// FixNoise repairs crosstalk glitch violations by upsizing victim drivers
// (stronger holding resistance) and, when a Store is present, assigning the
// wide/spaced NDR to the victim net (less coupling).
func FixNoise(ctx *Context, maxFixes int) (Report, error) {
	rep := Report{Pass: "noise_fix"}
	if err := ctx.A.Run(); err != nil {
		return rep, err
	}
	rep.WNSBefore = float64(len(ctx.A.NoiseViolations()))
	for iter := 0; iter < 6; iter++ {
		viols := ctx.A.NoiseViolations()
		if len(viols) == 0 || rep.Changed >= maxFixes {
			break
		}
		acted := 0
		for _, v := range viols {
			if rep.Changed >= maxFixes {
				break
			}
			did := false
			if ctx.Store != nil {
				if r, ok := ctx.Store.NDROf(v.Net); !ok {
					ctx.Store.SetNDR(v.Net, WideSpaced)
					did = true
				} else if r.Name == WideSpaced.Name {
					// Spacing was not enough: shield the victim.
					ctx.Store.SetNDR(v.Net, Shielded)
					did = true
				}
			}
			if drv := v.Net.Driver; drv != nil {
				m := ctx.Lib.Cell(drv.Cell.TypeName)
				drives := ctx.Lib.Drives(m.Function)
				for _, d := range drives {
					if d > m.Drive {
						if variant := ctx.Lib.Variant(m, d, m.Vt); variant != nil {
							rep.AreaDelta += variant.Area - m.Area
							rep.LeakageDelta += variant.Leakage - m.Leakage
							drv.Cell.SetType(variant.Name)
							did = true
						}
						break
					}
				}
			}
			if did {
				rep.Changed++
				acted++
			}
		}
		if acted == 0 {
			break
		}
		if err := ctx.A.Run(); err != nil {
			return rep, err
		}
	}
	rep.WNSAfter = float64(len(ctx.A.NoiseViolations()))
	return rep, nil
}

// ApplyNDR assigns the wide/spaced rule to the largest wire-delay nets on
// violating setup paths — Figure 1's fourth lever.
func ApplyNDR(ctx *Context, maxNets int) (Report, error) {
	rep := Report{Pass: "ndr"}
	if ctx.Store == nil {
		return rep, nil
	}
	if err := ctx.A.Run(); err != nil {
		return rep, err
	}
	rep.WNSBefore = ctx.A.WorstSlack(sta.Setup)
	rep.TNSBefore = ctx.A.TNS(sta.Setup)
	type wn struct {
		net   *netlist.Net
		delay units.Ps
	}
	var cands []wn
	seen := map[*netlist.Net]bool{}
	for _, p := range ctx.A.WorstPaths(sta.Setup, 30) {
		if p.GBASlack >= 0 {
			break
		}
		for _, st := range p.Steps {
			if st.IsCell || st.Net == nil || seen[st.Net] || ctx.Store.HasNDR(st.Net) {
				continue
			}
			seen[st.Net] = true
			cands = append(cands, wn{st.Net, st.Delay})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].delay > cands[j].delay })
	for _, c := range cands {
		if rep.Changed >= maxNets {
			break
		}
		if c.delay < 1 { // not worth a routing rule
			continue
		}
		ctx.Store.SetNDR(c.net, WideSpaced)
		rep.Changed++
	}
	if err := ctx.A.Run(); err != nil {
		return rep, err
	}
	rep.WNSAfter = ctx.A.WorstSlack(sta.Setup)
	rep.TNSAfter = ctx.A.TNS(sta.Setup)
	return rep, nil
}

// pinNameOf extracts the pin name from a "cell/pin" step name.
func pinNameOf(full string) string {
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == '/' {
			return full[i+1:]
		}
	}
	return full
}

// FixHold pads hold-violating endpoints with delay buffers on the D input,
// guarded by the endpoint's setup headroom.
func FixHold(ctx *Context, maxFixes int) (Report, error) {
	rep := Report{Pass: "hold_fix"}
	if err := ctx.A.Run(); err != nil {
		return rep, err
	}
	rep.WNSBefore = ctx.A.WorstSlack(sta.Hold)
	rep.TNSBefore = ctx.A.TNS(sta.Hold)
	delayBuf := liberty.CellName("BUF", 1, liberty.HVT)
	bm := ctx.Lib.Cell(delayBuf)
	// Cross-corner guard: padding consumes setup slack at the slow corner,
	// where the pad cell is far slower than at this (fast) hold corner.
	guard := ctx.SetupGuard
	var guardBuf float64
	if guard != nil {
		gb := guard.Cfg.Lib.Cell(delayBuf)
		guardBuf = gb.Arc("A", "Z").Delay(true, 20, 2*guard.Cfg.Lib.Tech.CinUnit)
	}
	for iter := 0; iter < 6; iter++ {
		viols := ctx.A.EndpointSlacks(sta.Hold)
		acted := 0
		seen := map[*netlist.Pin]bool{}
		for _, e := range viols {
			if e.Slack >= 0 {
				break
			}
			if e.Pin == nil || seen[e.Pin] || rep.Changed >= maxFixes {
				continue
			}
			seen[e.Pin] = true
			if e.Pin.Net == nil {
				continue
			}
			arc := bm.Arc("A", "Z")
			perBuf := arc.Delay(true, 20, ctx.Lib.Cell(e.Pin.Cell.TypeName).InputCap(e.Pin.Name))
			need := int(-e.Slack/perBuf) + 1
			if need > 12 {
				need = 12
			}
			// Pick the pad location: the endpoint's D pin, or — when the
			// endpoint also carries a setup-critical (deep) path — a pin
			// further up the *early* (short) branch with setup headroom at
			// both corners. Padding any pin on the early path delays the
			// racing data 1:1 while leaving the deep path untouched.
			holdPath := ctx.A.WorstPath(e)
			var best *netlist.Pin
			bestFit := 0
			for k := len(holdPath.Steps) - 1; k >= 1; k-- {
				st := holdPath.Steps[k]
				if st.IsCell || st.Cell == nil || st.Net == nil {
					continue
				}
				pin := st.Cell.Pin(pinNameOf(st.Name))
				if pin == nil || pin.Net != st.Net {
					continue
				}
				fit := int((ctx.A.PinSetupSlack(pin) - 5) / perBuf)
				if guard != nil && guardBuf > 0 {
					if g := int((guard.PinSetupSlack(pin) - 5) / guardBuf); g < fit {
						fit = g
					}
				}
				if fit > bestFit {
					best, bestFit = pin, fit
				}
				if bestFit >= need {
					break
				}
			}
			if best == nil || bestFit <= 0 {
				continue
			}
			if bestFit < need {
				need = bestFit
			}
			target := best
			for b := 0; b < need; b++ {
				nb, err := ctx.A.D.InsertBuffer(target.Net, []*netlist.Pin{target}, delayBuf)
				if err != nil {
					return rep, err
				}
				rep.AreaDelta += bm.Area
				rep.LeakageDelta += bm.Leakage
				target = nb.Pin("A")
			}
			rep.Changed++
			acted++
		}
		if acted == 0 {
			break
		}
		na, err := sta.New(ctx.A.D, ctx.A.Cons, ctx.A.Cfg)
		if err != nil {
			return rep, err
		}
		ctx.A = na
		if err := ctx.A.Run(); err != nil {
			return rep, err
		}
		if guard != nil {
			ng, err := sta.New(guard.D, guard.Cons, guard.Cfg)
			if err != nil {
				return rep, err
			}
			guard = ng
			if err := guard.Run(); err != nil {
				return rep, err
			}
			ctx.SetupGuard = guard
		}
	}
	rep.WNSAfter = ctx.A.WorstSlack(sta.Hold)
	rep.TNSAfter = ctx.A.TNS(sta.Hold)
	return rep, nil
}
