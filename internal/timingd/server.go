package timingd

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"newgame/internal/core"
	"newgame/internal/netlist"
	"newgame/internal/obs"
	"newgame/internal/pack"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/triage"
	"newgame/internal/units"
	"newgame/internal/workpool"
)

// Config assembles one timingd instance.
type Config struct {
	// Design is the netlist to serve. The server never mutates it: each
	// epoch snapshot works on its own clone.
	Design *netlist.Design
	// Recipe supplies the MCMM scenario set (libraries, corners, derates).
	Recipe core.Recipe
	// Stack is the BEOL stack parasitics are synthesized from.
	Stack *parasitics.Stack
	// ClockPort names the clock root port ("clk" when empty).
	ClockPort string
	// BasePeriod is the functional-mode clock period, ps.
	BasePeriod units.Ps
	// InputArrival is the external arrival on data inputs (0 = default).
	InputArrival units.Ps
	// Seed keys parasitics synthesis.
	Seed int64
	// Workers bounds scenario-level fan-out (initial builds, rebuilds);
	// 0 = all CPUs.
	Workers int
	// AnalysisWorkers bounds each analyzer's internal level-parallelism.
	// Per-scenario analyzers already run concurrently, so the default of 1
	// avoids oversubscription; raise it for single-scenario servers.
	AnalysisWorkers int
	// QueueDepth bounds the admission queue; a full queue answers 429.
	// Default 64.
	QueueDepth int
	// QueryWorkers is the number of goroutines draining the queue;
	// 0 = all CPUs.
	QueryWorkers int
	// CacheSize bounds the per-epoch query cache entries. Default 256.
	CacheSize int
	// RequestTimeout bounds each query's work, propagated as a context
	// into incremental re-timing. Default 30s.
	RequestTimeout time.Duration
	// Obs, when non-nil, records request counters, latency histograms and
	// sta-level spans, served at /metrics.
	Obs *obs.Recorder
	// FlightRequests / FlightCommits size the always-on flight-recorder
	// rings (last N requests at /debug/requests, last M commits at
	// /debug/epochs), rounded up to powers of two. Defaults 256 and 64.
	FlightRequests int
	FlightCommits  int
	// Hooks, when non-nil, injects faults at writer and cache seams.
	// Test-only; leave nil in production.
	Hooks *Hooks

	// ScenarioFilter, when non-empty, restricts the server to the named
	// scenarios of the recipe — a cluster worker serving its shard of the
	// MCMM scenario space. The kept scenarios stay in recipe order, and
	// ScenarioSet() reports their indices in the FULL recipe order so a
	// coordinator can merge shard answers canonically. Applied after
	// Restore, so workers booting from one shared pack can each keep a
	// different subset.
	ScenarioFilter []string
	// Role tags this instance for /healthz and /cluster/info ("" reads as
	// "single"; cmd/timingd sets "worker" or leaves it).
	Role string
	// PrepareTimeout bounds how long a prepared-but-uncommitted cluster
	// transaction may hold the writer before it is auto-aborted — a dead
	// coordinator must not wedge the shard. Default 15s.
	PrepareTimeout time.Duration

	// SnapshotDir, when non-empty, enables state persistence: POST
	// /admin/save writes binary packs there, and every committed ECO is
	// appended (CRC-framed, fsynced) to the epoch log epochs.log in the
	// same directory. At boot an existing log is replayed onto the built
	// state — crash recovery.
	SnapshotDir string
	// Restore, when non-nil, boots from a decoded snapshot pack: Design,
	// Recipe, Stack, clocking and seed are taken from it, the frozen
	// timing topology is adopted (skipping levelization), and the saved
	// parasitic trees seed the binders.
	Restore *pack.Snapshot
	// RestorePath is the pack the snapshot came from, for /healthz
	// provenance.
	RestorePath string
	// RestoreToEpoch, when > 0, stops epoch-log replay at that epoch
	// (point-in-time rewind) and truncates the log there; 0 replays the
	// whole log.
	RestoreToEpoch int64

	// savedTrees seeds the session binders from a restored snapshot.
	savedTrees map[string]sta.SavedTree
}

func (c *Config) withDefaults() *Config {
	out := *c
	if out.ClockPort == "" {
		out.ClockPort = "clk"
	}
	if out.BasePeriod == 0 {
		out.BasePeriod = 700
	}
	if out.QueueDepth == 0 {
		out.QueueDepth = 64
	}
	if out.CacheSize == 0 {
		out.CacheSize = 256
	}
	if out.RequestTimeout == 0 {
		out.RequestTimeout = 30 * time.Second
	}
	if out.AnalysisWorkers == 0 {
		out.AnalysisWorkers = 1
	}
	if out.FlightRequests == 0 {
		out.FlightRequests = 256
	}
	if out.FlightCommits == 0 {
		out.FlightCommits = 64
	}
	if out.PrepareTimeout == 0 {
		out.PrepareTimeout = 15 * time.Second
	}
	return &out
}

// Server is the resident daemon: two epoch-snapshot sessions (current and
// shadow), a bounded admission queue, and the query cache.
type Server struct {
	cfg *Config

	// cur is the snapshot readers resolve; shadow is the writer's working
	// copy. writerMu serializes what-if evaluation and ECO commits —
	// between writer operations shadow and cur are bit-identical (only
	// their epoch histories differ in how they got there).
	cur      atomic.Pointer[session]
	writerMu sync.Mutex
	shadow   *session

	epoch atomic.Int64
	pool  *workpool.Pool
	cache *queryCache

	// closeMu orders graceful shutdown against in-flight requests: every
	// handler holds it shared for its whole lifetime, Close takes it
	// exclusively, so Close blocks until the in-flight queries drain and
	// requests arriving during shutdown observe closed and refuse.
	closeMu sync.RWMutex
	closed  bool

	// degraded is set when a commit failed half-way (e.g. canceled during
	// the replay onto the retired snapshot) and the two sessions can no
	// longer be guaranteed identical; writes are refused from then on.
	degraded atomic.Bool

	// pending is the at-most-one prepared-but-uncommitted cluster
	// transaction (it holds writerMu); pendingMu arbitrates between the
	// commit handler, the abort handler, the expiry timer and Close.
	pendingMu sync.Mutex
	pending   *preparedTxn

	// scenarioSet is the served scenario subset, each entry carrying its
	// index in the full recipe order (identity for unfiltered servers).
	scenarioSet []ScenarioRef

	// triagePlan is the scenario-dominance pruning schedule, computed once
	// over the FULL recipe (captured before ScenarioFilter narrows it) so
	// every shard of a cluster derives the identical plan and a dominated
	// scenario on one shard resolves against its dominator on another.
	triagePlan triage.Plan

	// flight is the always-on black box: the last N requests and last M
	// commits, written lock-free from the hot path and served at
	// /debug/requests, /debug/epochs and /debug/slow.
	flight *obs.FlightRecorder
	start  time.Time

	// snap is the boot-time snapshot provenance; wal the open epoch log.
	// walAppended/walErr track the log's health for /healthz.
	snap        snapshotInfo
	wal         *pack.Log
	walAppended atomic.Int64
	walErr      atomic.Pointer[string]

	mux *http.ServeMux
}

// NewServer loads the design once and brings both epoch snapshots up. With
// Config.Restore set it boots from the decoded snapshot instead — no text
// parsing, no levelization — and with a SnapshotDir it then replays the
// epoch log's tail onto the restored state and opens the log for appends.
func NewServer(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	var restoreTopo *sta.Topology
	if c.Restore != nil {
		c.applyRestore()
		restoreTopo = c.Restore.Topology
	}
	if c.Design == nil {
		return nil, fmt.Errorf("timingd: Config.Design is nil")
	}
	if len(c.Recipe.Scenarios) == 0 {
		return nil, fmt.Errorf("timingd: recipe has no scenarios")
	}
	if c.Stack == nil {
		return nil, fmt.Errorf("timingd: Config.Stack is nil")
	}
	// Resolve the scenario shard AFTER a restore: workers booting from one
	// shared pack each keep their own subset of the pack's full recipe.
	full := make([]ScenarioRef, len(c.Recipe.Scenarios))
	for i, sc := range c.Recipe.Scenarios {
		full[i] = ScenarioRef{Index: i, Name: sc.Name}
	}
	kept, err := scenarioSubset(full, c.ScenarioFilter)
	if err != nil {
		return nil, err
	}
	// The triage plan must see the full recipe: the filter below replaces
	// it with the shard's subset.
	fullScenarios := c.Recipe.Scenarios
	if len(kept) != len(full) {
		scenarios := make([]core.Scenario, len(kept))
		for i, ref := range kept {
			scenarios[i] = c.Recipe.Scenarios[ref.Index]
		}
		c.Recipe.Scenarios = scenarios
	}
	s := &Server{
		cfg:         c,
		pool:        workpool.NewPool(c.QueryWorkers, c.QueueDepth),
		cache:       newQueryCache(c.CacheSize),
		flight:      obs.NewFlightRecorder(c.FlightRequests, c.FlightCommits),
		start:       time.Now(),
		scenarioSet: kept,
		triagePlan:  triage.PlanFor(fullScenarios, c.BasePeriod),
	}
	// Both snapshots are full builds from clones of the source design;
	// the keyed binder guarantees they are bit-identical despite being
	// built independently. The frozen timing topology is shared: the back
	// session adopts the front's (clones preserve vertex numbering), so
	// the dual-snapshot scheme levelizes the graph once, not 2×scenarios
	// times.
	// A restored boot seeds the first build with the snapshot's frozen
	// topology, so even the initial session skips Kahn levelization.
	front, err := newSession(c, c.Design, restoreTopo)
	if err != nil {
		return nil, err
	}
	back, err := newSession(c, c.Design, front.topology())
	if err != nil {
		return nil, err
	}
	s.cur.Store(front)
	s.shadow = back
	if c.Restore != nil {
		s.epoch.Store(c.Restore.Epoch)
		front.epoch = c.Restore.Epoch
		back.epoch = c.Restore.Epoch
		s.snap.restoredFrom = c.RestorePath
		s.snap.snapshotEpoch = c.Restore.Epoch
	}
	if c.SnapshotDir != "" {
		s.snap.dir = c.SnapshotDir
		if err := s.recoverLog(); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// ServeHTTP makes the server mountable (httptest, custom http.Server).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Epoch returns the current commit epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// Close stops admitting queries, drains the in-flight ones, and shuts the
// worker pool down. Safe to call more than once.
func (s *Server) Close() {
	s.closeMu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.closeMu.Unlock()
	// A prepared-but-undecided cluster transaction holds writerMu; abort
	// it now so shutdown (and the wal close below) cannot deadlock behind
	// a coordinator that will never answer.
	if p := s.takePending(""); p != nil {
		p.timer.Stop()
		s.abortPrepared(p, fmt.Errorf("server closing"))
	}
	s.pool.Close()
	if !alreadyClosed && s.wal != nil {
		// Appends hold writerMu; taking it orders the close after any
		// in-flight commit's log write.
		s.writerMu.Lock()
		s.wal.Close()
		s.writerMu.Unlock()
	}
}

// observe bumps the per-route request counter, latency histogram and —
// for non-2xx answers — the per-route error counter when recording.
func (s *Server) observe(route string, start time.Time, status int) {
	if s.cfg.Obs == nil {
		return
	}
	s.cfg.Obs.Counter("timingd." + route + ".requests").Add(1)
	if status >= 400 {
		s.cfg.Obs.Counter("timingd." + route + ".errors").Add(1)
	}
	s.cfg.Obs.Histogram("timingd."+route+".latency_ms",
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000).Observe(msSince(start))
}

// msSince is the elapsed wall time in (fractional) milliseconds.
func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

// count bumps a named counter when recording.
func (s *Server) count(name string) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter(name).Add(1)
	}
}

// commit applies a validated edit batch to the shadow, swaps it in as the
// new current snapshot, and replays the batch onto the retired snapshot so
// it can serve as the next shadow. Reads never wait on any of this: they
// keep resolving the old pointer until the swap, and the replay locks only
// the retired session.
//
// The implementation is the two-phase pipeline of twophase.go run
// back-to-back: prepare (resolve + apply + re-time the shadow) immediately
// followed by commitPrepared (epoch bump, swap, log, replay) — the cluster
// barrier drives the same two halves with a coordinator decision in
// between. Every commit — successful or not — leaves a CommitRecord with
// per-phase durations in the flight recorder, so /debug/epochs
// reconstructs the writer pipeline's audit timeline post hoc.
func (s *Server) commit(ctx context.Context, ops []Op) (*WhatIfReport, error) {
	p, err := s.prepare(ctx, ops, nil)
	if err != nil {
		return nil, err
	}
	return s.commitPrepared(p), nil
}

// whatIf evaluates an edit batch against the shadow and rolls it back,
// never publishing anything. The response is tagged with the epoch whose
// baseline it was evaluated against.
func (s *Server) whatIf(ctx context.Context, ops []Op) (*WhatIfReport, error) {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if s.degraded.Load() {
		return nil, fmt.Errorf("server degraded by earlier failed commit; restart required")
	}

	sh := s.shadow
	var rep *WhatIfReport
	err := guard(func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if err := s.fire(SiteCommitResolve); err != nil {
			return err
		}
		edits, err := sh.resolve(ops)
		if err != nil {
			return err
		}
		rep = &WhatIfReport{Epoch: s.epoch.Load(), Before: sh.slacks()}
		mark := sh.d.NameMark()
		if err := s.fire(SiteCommitApply); err != nil {
			return err
		}

		if anyStructural(edits) {
			// Structural what-if: the resident analyzers stay untouched —
			// fresh ones are built for the edited netlist and discarded,
			// and the exact netlist undo makes the saved views valid
			// again.
			saved := sh.views
			structural, err := sh.applyEdits(edits)
			if err == nil {
				err = sh.retime(ctx, s.cfg, structural)
			}
			if err == nil {
				rep.After = sh.slacks()
			}
			sh.undoEdits(edits, mark)
			sh.views = saved
			if err != nil {
				return err
			}
		} else {
			// Resize-only what-if: incremental forward, incremental back.
			// Invalidations from the whole batch coalesce into one Update
			// per view in each direction.
			if _, err := sh.applyEdits(edits); err != nil {
				sh.undoEdits(edits, mark)
				if rerr := sh.retime(context.Background(), s.cfg, false); rerr != nil {
					s.degraded.Store(true)
				}
				return err
			}
			err = sh.retime(ctx, s.cfg, false)
			if err == nil {
				rep.After = sh.slacks()
			}
			sh.undoEdits(edits, mark)
			if rerr := sh.retime(context.Background(), s.cfg, false); rerr != nil {
				s.degraded.Store(true)
			}
			return err
		}
		return nil
	})
	if err != nil {
		if isRecoveredPanic(err) {
			// A crash mid-evaluation means the shadow may not have been
			// rolled back; it can no longer back a commit.
			s.degraded.Store(true)
			s.count("timingd.panics_recovered")
		}
		return nil, err
	}
	s.count("timingd.whatifs")
	return rep, nil
}

func anyStructural(edits []*edit) bool {
	for _, e := range edits {
		if e.structural() {
			return true
		}
	}
	return false
}
