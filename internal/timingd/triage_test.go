package timingd

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func TestTriageReport(t *testing.T) {
	_, hs := newTestServer(t, nil)
	code, b := get(t, hs.URL, "/triage")
	if code != 200 {
		t.Fatalf("/triage answered %d: %s", code, b)
	}
	var rep TriageReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Scenarios != 2 {
		t.Fatalf("stats cover %d scenarios, want 2", rep.Stats.Scenarios)
	}
	if len(rep.Clusters) == 0 || rep.Stats.Violations == 0 {
		t.Fatalf("fixture produced no clustered violations: %+v", rep.Stats)
	}
	total := 0
	for i, c := range rep.Clusters {
		if c.ID != i+1 || c.DominantScenario == "" || c.DominantSegment == "" {
			t.Fatalf("malformed cluster: %+v", c)
		}
		if i > 0 && rep.Clusters[i-1].TNS > c.TNS {
			t.Fatal("clusters not ranked by TNS")
		}
		for _, v := range c.Violations {
			if v.Slack >= 0 || len(v.Segments) == 0 {
				t.Fatalf("malformed violation: %+v", v)
			}
			total++
		}
	}
	if total != rep.Stats.Violations {
		t.Fatalf("clusters hold %d violations, stats claim %d", total, rep.Stats.Violations)
	}
	if rep.Stats.AnalyzedPairs != total {
		// OldGoalPosts' two corners use different libraries, so nothing is
		// delay-identical and nothing may be pruned.
		t.Fatalf("analyzed %d pairs for %d violations with no dominance", rep.Stats.AnalyzedPairs, total)
	}
}

func TestTriageExtract(t *testing.T) {
	_, hs := newTestServer(t, nil)
	code, b := get(t, hs.URL, "/triage/extract?scenario=func_ff_cb")
	if code != 200 {
		t.Fatalf("/triage/extract answered %d: %s", code, b)
	}
	var ex TriageExtract
	if err := json.Unmarshal(b, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Scenario != "func_ff_cb" || len(ex.Violations) == 0 || ex.AnalyzedPairs == 0 {
		t.Fatalf("extract shape: %+v", ex.ScenarioExtract)
	}
	if code, b := get(t, hs.URL, "/triage/extract?scenario=nope"); code != 400 {
		t.Fatalf("unknown scenario answered %d: %s", code, b)
	}
	if code, _ := get(t, hs.URL, "/triage?window=bogus"); code != 400 {
		t.Fatalf("bad window answered %d", code)
	}
}

// TestTriageCacheEpochScoped: repeated /triage queries hit the epoch-
// scoped cache, and an ECO commit purges them — the next query re-renders
// against the new epoch.
func TestTriageCacheEpochScoped(t *testing.T) {
	s, hs := newTestServer(t, nil)
	_, before := get(t, hs.URL, "/triage")
	get(t, hs.URL, "/triage")
	hits, misses := s.cache.stats()
	if hits < 1 {
		t.Fatalf("no cache hit after repeat /triage (hits=%d misses=%d)", hits, misses)
	}
	cell, to := resizeTarget(t)
	post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	_, afterMisses0 := s.cache.stats()
	_, after := get(t, hs.URL, "/triage")
	_, afterMisses1 := s.cache.stats()
	if afterMisses1 != afterMisses0+1 {
		t.Fatalf("post-commit /triage did not miss (misses %d -> %d)", afterMisses0, afterMisses1)
	}
	var repBefore, repAfter TriageReport
	if err := json.Unmarshal(before, &repBefore); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(after, &repAfter); err != nil {
		t.Fatal(err)
	}
	if repAfter.Epoch != repBefore.Epoch+1 {
		t.Fatalf("post-commit epoch %d, want %d", repAfter.Epoch, repBefore.Epoch+1)
	}
}

// TestTriageDebugTrace: a traced cold /triage shows the render span; the
// cache-hit repeat truthfully shows none; X-Trace-Id is echoed.
func TestTriageDebugTrace(t *testing.T) {
	_, hs := newTestServer(t, nil)
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/triage?debug=trace", nil)
	req.Header.Set("X-Trace-Id", "feedface00000077")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("traced /triage answered %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "feedface00000077" {
		t.Fatalf("X-Trace-Id echo = %q", got)
	}
	var tr TraceReport
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "feedface00000077" {
		t.Fatalf("body trace_id %q disagrees with header", tr.TraceID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "timingd.triage" {
		t.Fatalf("span forest not rooted at the route span: %+v", tr.Spans)
	}
	render := findSpan(tr.Spans, "render")
	if render == nil || render.DurUs <= 0 {
		t.Fatalf("cold traced /triage missing render span: %+v", render)
	}
	var rep TriageReport
	if err := json.Unmarshal(tr.Response, &rep); err != nil {
		t.Fatalf("inline response does not parse: %v", err)
	}
	if rep.Stats.Scenarios != 2 {
		t.Fatalf("inline response shape: %+v", rep.Stats)
	}

	code, b := get(t, hs.URL, "/triage?debug=trace")
	if code != 200 {
		t.Fatalf("second traced /triage answered %d", code)
	}
	var tr2 TraceReport
	if err := json.Unmarshal(b, &tr2); err != nil {
		t.Fatal(err)
	}
	if findSpan(tr2.Spans, "render") != nil {
		t.Fatal("cache-hit trace claims a render span")
	}
	if tr2.TraceID == tr.TraceID {
		t.Fatal("second request reused the first trace ID")
	}
}

// TestTriageBackpressure429: /triage goes through the same bounded
// admission queue as every query route.
func TestTriageBackpressure429(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) {
		c.QueryWorkers = 1
		c.QueueDepth = 1
	})
	release := make(chan struct{})
	started := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(started); <-release }) {
		t.Fatal("could not pin the worker")
	}
	<-started
	if !s.pool.TrySubmit(func() {}) {
		t.Fatal("could not fill the queue slot")
	}
	resp, err := http.Get(hs.URL + "/triage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /triage answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := get(t, hs.URL, "/triage")
		if code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not recover after drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTriageTimeout504(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.RequestTimeout = time.Nanosecond
	})
	code, _ := get(t, hs.URL, "/triage")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out /triage answered %d, want 504", code)
	}
}
