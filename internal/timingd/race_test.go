package timingd

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// logged is one response observed during the concurrent phase. Epoch is
// parsed from the response body — it is the replay key.
type logged struct {
	method string
	uri    string
	body   string
	epoch  int64
	resp   []byte
}

func parseEpoch(t testing.TB, b []byte) int64 {
	t.Helper()
	var e struct {
		Epoch int64 `json:"epoch"`
	}
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("response without epoch: %v in %s", err, b)
	}
	return e.Epoch
}

// findResize returns a combinational resize target other than exclude.
func findResize(t testing.TB, exclude string) (cell, to string) {
	t.Helper()
	recipe, _, d := fixture(t)
	lib := recipe.Scenarios[0].Lib
	for _, c := range d.Cells {
		if c.Name == exclude {
			continue
		}
		m := lib.Cell(c.TypeName)
		if m == nil || m.IsSequential() {
			continue
		}
		if strings.HasSuffix(c.TypeName, "_SVT") {
			v := strings.TrimSuffix(c.TypeName, "_SVT") + "_LVT"
			if lib.Cell(v) != nil {
				return c.Name, v
			}
		}
	}
	t.Fatal("no second resize target")
	return "", ""
}

// TestConcurrentQueriesReplayByteIdentical is the determinism contract of
// the epoch protocol: N concurrent clients issue reads and what-ifs while
// ECO commits land, every response is logged with its epoch tag, and then
// the whole log is replayed serially against a fresh, identically
// configured server — applying the commits in epoch order. Every replayed
// response must be byte-identical to the logged one. Run it under -race:
// it exercises reads racing the pointer swap, stragglers racing the replay
// onto the retired snapshot, and what-ifs racing commits for the writer
// lock.
func TestConcurrentQueriesReplayByteIdentical(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.QueryWorkers = 4
		c.QueueDepth = 256
	})

	ecoCell, ecoLVT := resizeTarget(t)
	_, _, d := fixture(t)
	ecoSVT := d.Cell(ecoCell).TypeName
	wifCell, wifTo := findResize(t, ecoCell)

	const commits = 4
	ecoBodies := make([]string, commits)
	for i := range ecoBodies {
		to := ecoLVT
		if i%2 == 1 {
			to = ecoSVT
		}
		ecoBodies[i] = opsJSON(Op{Kind: "resize", Cell: ecoCell, To: to})
	}

	var (
		mu      sync.Mutex
		log     []logged
		ecoLog  []logged
		stop    atomic.Bool
		readers sync.WaitGroup
	)
	record := func(e logged) {
		mu.Lock()
		log = append(log, e)
		mu.Unlock()
	}

	uris := []string{
		"/slack", "/endpoints?limit=8", "/paths?k=2",
		"/endpoints?kind=hold&limit=4", "/slack", "/paths?k=3",
	}
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; !stop.Load() && i < 2000; i++ {
				uri := uris[(g+i)%len(uris)]
				code, b := get(t, hs.URL, uri)
				if code != 200 {
					continue // backpressure shed; not part of the contract
				}
				record(logged{method: "GET", uri: uri, epoch: parseEpoch(t, b), resp: b})
			}
		}(g)
	}
	wifBody := opsJSON(Op{Kind: "resize", Cell: wifCell, To: wifTo})
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 5; i++ {
				code, b := post(t, hs.URL, "/whatif", wifBody)
				if code != 200 {
					continue
				}
				record(logged{method: "POST", uri: "/whatif", body: wifBody, epoch: parseEpoch(t, b), resp: b})
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	// Commits land from the main goroutine, spaced so reads observe
	// several distinct epochs mid-flight.
	for i := 0; i < commits; i++ {
		time.Sleep(25 * time.Millisecond)
		code, b := post(t, hs.URL, "/eco", ecoBodies[i])
		if code != 200 {
			t.Fatalf("eco %d failed: %d %s", i, code, b)
		}
		if got := parseEpoch(t, b); got != int64(i+1) {
			t.Fatalf("eco %d returned epoch %d", i, got)
		}
		ecoLog = append(ecoLog, logged{method: "POST", uri: "/eco", body: ecoBodies[i], resp: b})
	}
	stop.Store(true)
	readers.Wait()

	if len(log) < commits {
		t.Fatalf("only %d concurrent responses logged", len(log))
	}
	epochsSeen := map[int64]bool{}
	for _, e := range log {
		epochsSeen[e.epoch] = true
	}
	if len(epochsSeen) < 2 {
		t.Fatalf("concurrent phase observed only epochs %v; no interleaving to verify", epochsSeen)
	}

	// Serial replay on a fresh server: same design, same seed, same
	// config. Epoch by epoch: answer everything logged at that epoch, then
	// apply the next commit and check its response too.
	_, hsB := newTestServer(t, func(c *Config) {
		c.QueryWorkers = 4
		c.QueueDepth = 256
	})
	byEpoch := map[int64][]logged{}
	for _, e := range log {
		byEpoch[e.epoch] = append(byEpoch[e.epoch], e)
	}
	checked := 0
	for epoch := int64(0); epoch <= commits; epoch++ {
		for _, e := range byEpoch[epoch] {
			var code int
			var b []byte
			if e.method == "GET" {
				code, b = get(t, hsB.URL, e.uri)
			} else {
				code, b = post(t, hsB.URL, e.uri, e.body)
			}
			if code != 200 {
				t.Fatalf("replay %s %s at epoch %d: status %d", e.method, e.uri, epoch, code)
			}
			if !bytes.Equal(b, e.resp) {
				t.Fatalf("replay mismatch for %s %s at epoch %d:\nconcurrent: %s\nserial:     %s",
					e.method, e.uri, epoch, e.resp, b)
			}
			checked++
		}
		if epoch < commits {
			code, b := post(t, hsB.URL, "/eco", ecoLog[epoch].body)
			if code != 200 {
				t.Fatalf("replay eco %d: status %d %s", epoch, code, b)
			}
			if !bytes.Equal(b, ecoLog[epoch].resp) {
				t.Fatalf("replay eco %d mismatch:\nconcurrent: %s\nserial:     %s",
					epoch, ecoLog[epoch].resp, b)
			}
		}
	}
	t.Logf("replayed %d concurrent responses + %d commits byte-identically across %d epochs",
		checked, commits, len(epochsSeen))
}
