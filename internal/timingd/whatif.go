package timingd

import (
	"context"
	"fmt"
	"strings"

	"newgame/internal/netlist"
)

// edit is one validated Op bound to a session's own netlist pointers,
// carrying everything its exact undo needs.
type edit struct {
	op Op
	// resize
	cell    *netlist.Cell
	oldType string
	// buffer
	net        *netlist.Net
	moved      []*netlist.Pin
	savedLoads []*netlist.Pin
	buf        *netlist.Cell
}

func (e *edit) structural() bool { return e.op.Kind == "buffer" }

// resolve binds the request's names to session pointers and validates the
// target masters against every scenario library, so apply cannot fail on
// anything but cancellation.
func (s *session) resolve(ops []Op) ([]*edit, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty op list")
	}
	edits := make([]*edit, len(ops))
	for i, op := range ops {
		e := &edit{op: op}
		for _, v := range s.views {
			m := v.scenario.Lib.Cell(op.To)
			if m == nil {
				return nil, fmt.Errorf("op %d: master %q not in scenario %q library", i, op.To, v.scenario.Name)
			}
			if op.Kind == "buffer" && (m.Pin("A") == nil || m.Pin("Z") == nil) {
				return nil, fmt.Errorf("op %d: master %q is not a buffer", i, op.To)
			}
		}
		switch op.Kind {
		case "resize":
			c := s.d.Cell(op.Cell)
			if c == nil {
				return nil, fmt.Errorf("op %d: unknown cell %q", i, op.Cell)
			}
			// The replacement must be pin-compatible: every connected pin
			// keeps its name and direction.
			m := s.views[0].scenario.Lib.Cell(op.To)
			for _, p := range c.Pins {
				ps := m.Pin(p.Name)
				if ps == nil || ps.Input != (p.Dir == netlist.Input) {
					return nil, fmt.Errorf("op %d: %q is not pin-compatible with cell %q", i, op.To, op.Cell)
				}
			}
			e.cell, e.oldType = c, c.TypeName
		case "buffer":
			n := s.d.Net(op.Net)
			if n == nil {
				return nil, fmt.Errorf("op %d: unknown net %q", i, op.Net)
			}
			if len(op.Loads) == 0 {
				return nil, fmt.Errorf("op %d: buffer op moves no loads", i)
			}
			for _, name := range op.Loads {
				p, err := findLoad(n, name)
				if err != nil {
					return nil, fmt.Errorf("op %d: %v", i, err)
				}
				e.moved = append(e.moved, p)
			}
			e.net = n
		default:
			return nil, fmt.Errorf("op %d: unknown op kind %q", i, op.Kind)
		}
		edits[i] = e
	}
	return edits, nil
}

// findLoad resolves a "cell/pin" name among a net's loads.
func findLoad(n *netlist.Net, name string) (*netlist.Pin, error) {
	cell, pin, ok := strings.Cut(name, "/")
	if !ok {
		return nil, fmt.Errorf("load %q is not cell/pin", name)
	}
	for _, l := range n.Loads {
		if l.Cell != nil && l.Cell.Name == cell && l.Name == pin {
			return l, nil
		}
	}
	return nil, fmt.Errorf("net %q has no load %q", n.Name, name)
}

// applyEdits performs the batch's netlist edits on the session. Resizes
// invalidate the resident analyzers; the caller coalesces those into one
// Update per view afterwards. Buffer insertions are structural and flagged
// for a view rebuild. Must run with s.mu held for writing.
func (s *session) applyEdits(edits []*edit) (structural bool, err error) {
	for _, e := range edits {
		switch e.op.Kind {
		case "resize":
			e.cell.SetType(e.op.To)
			for _, v := range s.views {
				v.a.InvalidateCell(e.cell)
			}
		case "buffer":
			structural = true
			e.savedLoads = append([]*netlist.Pin(nil), e.net.Loads...)
			e.buf, err = s.d.InsertBuffer(e.net, e.moved, e.op.To)
			if err != nil {
				return structural, err
			}
		}
	}
	return structural, nil
}

// undoEdits reverses applyEdits exactly, in reverse order: resizes restore
// the old master (re-invalidating the analyzers), buffer insertions are
// unwound to the saved load list and name sequence so the netlist is
// pointer- and name-identical to the pre-edit state. Must run with s.mu
// held for writing, after a NameMark taken before applyEdits.
func (s *session) undoEdits(edits []*edit, nameMark int) {
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		switch e.op.Kind {
		case "resize":
			e.cell.SetType(e.oldType)
			for _, v := range s.views {
				v.a.InvalidateCell(e.cell)
			}
		case "buffer":
			if e.buf == nil {
				continue
			}
			bufNet := e.buf.Pin("Z").Net
			for _, m := range append([]*netlist.Pin(nil), bufNet.Loads...) {
				s.d.Disconnect(m)
			}
			s.d.RemoveCell(e.buf)
			s.d.CleanDanglingNets()
			e.net.Loads = e.savedLoads
			for _, l := range e.savedLoads {
				l.Net = e.net
			}
			e.buf = nil
		}
	}
	s.d.RewindNames(nameMark)
}

// retime brings every view current after applyEdits: one incremental
// Update per view for resize-only batches (the coalescing point — a batch
// of ten resizes costs one cone re-propagation per scenario, not ten), or
// a full view rebuild after structural edits. Cancellation propagates into
// the wave propagation; on error the views are left dirty and the caller
// is responsible for restoring them.
func (s *session) retime(ctx context.Context, cfg *Config, structural bool) error {
	if structural {
		return s.rebuildViews(ctx, cfg)
	}
	for _, v := range s.views {
		if err := v.a.UpdateCtx(ctx); err != nil {
			return err
		}
	}
	return nil
}
