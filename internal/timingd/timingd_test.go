package timingd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"newgame/internal/circuits"
	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/obs"
	"newgame/internal/parasitics"
)

// The test fixture is shared: library generation dominates setup cost, and
// every server clones the design anyway, so tests never interfere.
var (
	fixOnce   sync.Once
	fixRecipe core.Recipe
	fixStack  *parasitics.Stack
	fixDesign *netlist.Design
)

func fixture(t testing.TB) (core.Recipe, *parasitics.Stack, *netlist.Design) {
	t.Helper()
	fixOnce.Do(func() {
		fixStack = parasitics.Stack16()
		fixRecipe = core.OldGoalPosts(liberty.Node16, fixStack)
		fixDesign = circuits.Block(fixRecipe.Scenarios[0].Lib, circuits.BlockSpec{
			Name: "td", Inputs: 12, Outputs: 12, FFs: 32, Gates: 350,
			MaxDepth: 9, Seed: 7, ClockBufferLevels: 2,
			VtMix: [3]float64{0, 0.5, 0.5},
		})
	})
	return fixRecipe, fixStack, fixDesign
}

func testConfig(t testing.TB) Config {
	recipe, stack, d := fixture(t)
	return Config{
		Design: d, Recipe: recipe, Stack: stack,
		BasePeriod: 560, Seed: 7, QueryWorkers: 4,
	}
}

func newTestServer(t testing.TB, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := testConfig(t)
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func get(t testing.TB, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func post(t testing.TB, base, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// resizeTarget finds a combinational cell with an in-library Vt variant.
func resizeTarget(t testing.TB) (cell, to string) {
	t.Helper()
	recipe, _, d := fixture(t)
	lib := recipe.Scenarios[0].Lib
	for _, c := range d.Cells {
		m := lib.Cell(c.TypeName)
		if m == nil || m.IsSequential() {
			continue
		}
		if strings.HasSuffix(c.TypeName, "_SVT") {
			v := strings.TrimSuffix(c.TypeName, "_SVT") + "_LVT"
			if lib.Cell(v) != nil {
				return c.Name, v
			}
		}
	}
	t.Fatal("no resize target in fixture")
	return "", ""
}

// bufferTarget finds a cell-driven net with at least three loads.
func bufferTarget(t testing.TB) (net string, loads []string) {
	t.Helper()
	_, _, d := fixture(t)
	for _, n := range d.Nets {
		if n.Driver != nil && len(n.Loads) >= 3 {
			return n.Name, []string{n.Loads[0].FullName(), n.Loads[1].FullName()}
		}
	}
	t.Fatal("no buffer target in fixture")
	return "", nil
}

func opsJSON(ops ...Op) string {
	b, _ := json.Marshal(struct {
		Ops []Op `json:"ops"`
	}{ops})
	return string(b)
}

// Two independently built servers answer /slack byte-identically, and the
// answer carries epoch 0 — the determinism baseline everything else builds
// on.
func TestSlackDeterministicAcrossServers(t *testing.T) {
	_, hs1 := newTestServer(t, nil)
	_, hs2 := newTestServer(t, nil)
	c1, b1 := get(t, hs1.URL, "/slack")
	c2, b2 := get(t, hs2.URL, "/slack")
	if c1 != 200 || c2 != 200 {
		t.Fatalf("status %d/%d", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("independent servers disagree:\n%s\n%s", b1, b2)
	}
	var rep SlackReport
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 0 || len(rep.Scenarios) != 2 {
		t.Fatalf("unexpected report shape: epoch %d, %d scenarios", rep.Epoch, len(rep.Scenarios))
	}
}

// A what-if must leave the baseline untouched: /slack before and after the
// what-if are byte-identical, the epoch does not advance, and the what-if
// itself reports a changed "after".
func TestWhatIfLeavesBaselineUntouched(t *testing.T) {
	_, hs := newTestServer(t, nil)
	cell, to := resizeTarget(t)
	_, before := get(t, hs.URL, "/slack")
	code, wb := post(t, hs.URL, "/whatif", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != 200 {
		t.Fatalf("whatif status %d: %s", code, wb)
	}
	var rep WhatIfReport
	if err := json.Unmarshal(wb, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Committed || rep.Epoch != 0 {
		t.Fatalf("whatif committed=%v epoch=%d", rep.Committed, rep.Epoch)
	}
	if len(rep.After) == 0 {
		t.Fatal("whatif reported no after slacks")
	}
	_, after := get(t, hs.URL, "/slack")
	if !bytes.Equal(before, after) {
		t.Fatalf("whatif perturbed the baseline:\n%s\n%s", before, after)
	}
}

// ECO commit advances the epoch, the new /slack matches the commit's
// "after", and committing the inverse op restores the original numbers —
// the incremental epoch chain stays bit-exact in both directions.
func TestECOCommitAndRevert(t *testing.T) {
	_, hs := newTestServer(t, nil)
	cell, to := resizeTarget(t)
	recipe, _, d := fixture(t)
	_ = recipe
	oldType := d.Cell(cell).TypeName

	_, slack0 := get(t, hs.URL, "/slack")
	code, cb := post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != 200 {
		t.Fatalf("eco status %d: %s", code, cb)
	}
	var rep WhatIfReport
	if err := json.Unmarshal(cb, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Committed || rep.Epoch != 1 {
		t.Fatalf("eco committed=%v epoch=%d", rep.Committed, rep.Epoch)
	}
	_, slack1 := get(t, hs.URL, "/slack")
	var s1 SlackReport
	if err := json.Unmarshal(slack1, &s1); err != nil {
		t.Fatal(err)
	}
	if s1.Epoch != 1 {
		t.Fatalf("post-commit slack epoch %d", s1.Epoch)
	}
	if fmt.Sprint(s1.Scenarios) != fmt.Sprint(rep.After) {
		t.Fatalf("post-commit slack differs from commit's after:\n%v\n%v", s1.Scenarios, rep.After)
	}
	// Revert and compare numbers (epoch tag differs, so compare bodies
	// with the epoch stripped).
	code, _ = post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: oldType}))
	if code != 200 {
		t.Fatal("revert eco failed")
	}
	_, slack2 := get(t, hs.URL, "/slack")
	var s0, s2 SlackReport
	if err := json.Unmarshal(slack0, &s0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(slack2, &s2); err != nil {
		t.Fatal(err)
	}
	if s2.Epoch != 2 {
		t.Fatalf("post-revert epoch %d", s2.Epoch)
	}
	if fmt.Sprint(s0.Scenarios) != fmt.Sprint(s2.Scenarios) {
		t.Fatalf("revert did not restore baseline:\n%v\n%v", s0.Scenarios, s2.Scenarios)
	}
}

// Structural what-if (buffer insertion) forces a view rebuild on a netlist
// copy and an exact undo; the baseline must survive byte-identically, and
// a structural ECO must keep serving consistently afterwards.
func TestBufferWhatIfAndECO(t *testing.T) {
	_, hs := newTestServer(t, nil)
	net, loads := bufferTarget(t)
	op := Op{Kind: "buffer", Net: net, Loads: loads, To: "BUF_X2_SVT"}

	_, before := get(t, hs.URL, "/slack")
	code, wb := post(t, hs.URL, "/whatif", opsJSON(op))
	if code != 200 {
		t.Fatalf("buffer whatif status %d: %s", code, wb)
	}
	_, after := get(t, hs.URL, "/slack")
	if !bytes.Equal(before, after) {
		t.Fatal("structural whatif perturbed the baseline")
	}

	// Commit it for real, then keep using the server: reads, a resize
	// what-if, and a second commit must all still work on the rebuilt
	// views.
	code, cb := post(t, hs.URL, "/eco", opsJSON(op))
	if code != 200 {
		t.Fatalf("buffer eco status %d: %s", code, cb)
	}
	var rep WhatIfReport
	if err := json.Unmarshal(cb, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Committed || rep.Epoch != 1 {
		t.Fatalf("buffer eco committed=%v epoch=%d", rep.Committed, rep.Epoch)
	}
	code, body := get(t, hs.URL, "/paths?k=2")
	if code != 200 {
		t.Fatalf("paths after structural eco: %d %s", code, body)
	}
	cell, to := resizeTarget(t)
	code, _ = post(t, hs.URL, "/whatif", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != 200 {
		t.Fatal("resize whatif after structural eco failed")
	}
	code, cb = post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != 200 {
		t.Fatalf("resize eco after structural eco: %d %s", code, cb)
	}
	var rep2 WhatIfReport
	if err := json.Unmarshal(cb, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch != 2 {
		t.Fatalf("second eco epoch %d", rep2.Epoch)
	}
}

// The query cache serves repeated queries from rendered bytes within an
// epoch and is dropped on commit.
func TestQueryCacheEpochScoped(t *testing.T) {
	s, hs := newTestServer(t, nil)
	get(t, hs.URL, "/slack")
	get(t, hs.URL, "/slack")
	hits, misses := s.cache.stats()
	if hits < 1 {
		t.Fatalf("no cache hit after repeat query (hits=%d misses=%d)", hits, misses)
	}
	cell, to := resizeTarget(t)
	post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	_, afterMisses0 := s.cache.stats()
	get(t, hs.URL, "/slack")
	_, afterMisses1 := s.cache.stats()
	if afterMisses1 != afterMisses0+1 {
		t.Fatalf("post-commit query did not miss (misses %d -> %d)", afterMisses0, afterMisses1)
	}
}

// A full admission queue answers 429 with Retry-After instead of queuing
// unboundedly. The worker and queue slots are pinned by jobs the test
// controls.
func TestBackpressure429(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) {
		c.QueryWorkers = 1
		c.QueueDepth = 1
	})
	release := make(chan struct{})
	started := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(started); <-release }) {
		t.Fatal("could not pin the worker")
	}
	<-started
	if !s.pool.TrySubmit(func() {}) {
		t.Fatal("could not fill the queue slot")
	}
	resp, err := http.Get(hs.URL + "/slack")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	// Once drained, service resumes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := get(t, hs.URL, "/slack")
		if code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not recover after drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// An expired per-request budget surfaces as 504, not a hung request.
func TestRequestTimeout504(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.RequestTimeout = time.Nanosecond
	})
	code, _ := get(t, hs.URL, "/slack")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request answered %d, want 504", code)
	}
}

// Close drains in-flight queries (they complete with 200) and refuses new
// ones with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	s, hs := newTestServer(t, nil)
	const inFlight = 8
	codes := make(chan int, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/paths?k=3&i=%d", hs.URL, i))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let them admit
	s.Close()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != 200 && code != http.StatusServiceUnavailable {
			t.Fatalf("in-flight request got %d", code)
		}
	}
	code, _ := get(t, hs.URL, "/slack")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-close request answered %d, want 503", code)
	}
}

// Input validation: bad methods, bad params, unknown names.
func TestRequestValidation(t *testing.T) {
	_, hs := newTestServer(t, nil)
	if code, _ := post(t, hs.URL, "/slack", "{}"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /slack answered %d", code)
	}
	if code, _ := get(t, hs.URL, "/paths?k=zero"); code != http.StatusBadRequest {
		t.Fatalf("bad k answered %d", code)
	}
	if code, _ := get(t, hs.URL, "/endpoints?kind=maybe"); code != http.StatusBadRequest {
		t.Fatalf("bad kind answered %d", code)
	}
	if code, _ := get(t, hs.URL, "/endpoints?scenario=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad scenario answered %d", code)
	}
	if code, _ := post(t, hs.URL, "/whatif", opsJSON(Op{Kind: "resize", Cell: "nope", To: "INV_X1_SVT"})); code != http.StatusBadRequest {
		t.Fatalf("unknown cell answered %d", code)
	}
	if code, _ := post(t, hs.URL, "/whatif", `{"ops":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty ops answered %d", code)
	}
	if code, _ := post(t, hs.URL, "/eco", `not json`); code != http.StatusBadRequest {
		t.Fatalf("bad body answered %d", code)
	}
}

// /healthz and /metrics bypass the admission queue.
func TestHealthAndMetricsBypassQueue(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) {
		c.QueryWorkers = 1
		c.QueueDepth = 1
		c.Obs = obs.NewRecorder()
	})
	release := make(chan struct{})
	started := make(chan struct{})
	s.pool.TrySubmit(func() { close(started); <-release })
	<-started
	s.pool.TrySubmit(func() {})
	defer close(release)
	code, hb := get(t, hs.URL, "/healthz")
	if code != 200 {
		t.Fatalf("healthz under saturation answered %d", code)
	}
	var h Health
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Scenarios != 2 {
		t.Fatalf("health %+v", h)
	}
	if code, _ := get(t, hs.URL, "/metrics"); code != 200 {
		t.Fatalf("metrics under saturation answered %d", code)
	}
}

// Endpoint and path queries answer consistently across scenario and kind
// parameters.
func TestEndpointsAndPathsQueries(t *testing.T) {
	_, hs := newTestServer(t, nil)
	code, b := get(t, hs.URL, "/endpoints?kind=hold&limit=5&scenario=func_ff_cb")
	if code != 200 {
		t.Fatalf("endpoints answered %d: %s", code, b)
	}
	var er EndpointsReport
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Scenario != "func_ff_cb" || len(er.Endpoints) != 5 {
		t.Fatalf("endpoints shape: %s, %d entries", er.Scenario, len(er.Endpoints))
	}
	for i := 1; i < len(er.Endpoints); i++ {
		if er.Endpoints[i].Slack < er.Endpoints[i-1].Slack {
			t.Fatal("endpoints not sorted worst-first")
		}
	}
	code, b = get(t, hs.URL, "/paths?k=3")
	if code != 200 {
		t.Fatalf("paths answered %d", code)
	}
	var pr PathsReport
	if err := json.Unmarshal(b, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Paths) != 3 {
		t.Fatalf("got %d paths", len(pr.Paths))
	}
	for _, p := range pr.Paths {
		if p.PBASlack < p.GBASlack {
			t.Fatalf("PBA slack %v worse than GBA %v on %s", p.PBASlack, p.GBASlack, p.Endpoint)
		}
		if p.Route == "" || p.Depth <= 0 {
			t.Fatalf("degenerate path report %+v", p)
		}
	}
}
