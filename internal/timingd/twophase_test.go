package timingd

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// prepareBody builds a /cluster/prepare request for the fixture's resize
// target.
func prepareBody(t *testing.T, txn string, baseEpoch int64) string {
	t.Helper()
	cell, to := resizeTarget(t)
	return fmt.Sprintf(`{"txn":%q,"base_epoch":%d,"ops":[{"op":"resize","cell":%q,"to":%q}]}`,
		txn, baseEpoch, cell, to)
}

// TestPrepareCommitPublishes walks the happy barrier path over HTTP: the
// prepare must not advance the served epoch, the commit must, and the
// post-commit baseline must equal the prepare report's After exactly.
func TestPrepareCommitPublishes(t *testing.T) {
	s, hs := newTestServer(t, nil)

	code, body := post(t, hs.URL, "/cluster/prepare", prepareBody(t, "tx1", 0))
	if code != 200 {
		t.Fatalf("prepare: %d %s", code, body)
	}
	var pr PrepareResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Txn != "tx1" || pr.Epoch != 1 || pr.Report == nil || len(pr.Report.After) == 0 {
		t.Fatalf("prepare response %+v", pr)
	}

	// Pending prepare: readers still see epoch 0 — nothing is published.
	if _, b := get(t, hs.URL, "/slack"); !jsonHasEpoch(t, b, 0) {
		t.Fatalf("slack moved during pending prepare: %s", b)
	}
	if got := s.pendingTxnID(); got != "tx1" {
		t.Fatalf("pending txn %q", got)
	}

	code, body = post(t, hs.URL, "/cluster/commit", `{"txn":"tx1"}`)
	if code != 200 {
		t.Fatalf("commit: %d %s", code, body)
	}
	var tr TxnResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Epoch != 1 || s.Epoch() != 1 {
		t.Fatalf("commit response %+v, server epoch %d", tr, s.Epoch())
	}

	_, b := get(t, hs.URL, "/slack")
	var sr SlackReport
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Epoch != 1 {
		t.Fatalf("post-commit epoch %d", sr.Epoch)
	}
	after, _ := json.Marshal(pr.Report.After)
	now, _ := json.Marshal(sr.Scenarios)
	if string(after) != string(now) {
		t.Fatalf("post-commit baseline != prepare After:\n%s\n%s", after, now)
	}

	// Committing the consumed txn again is a clean 409, and the writer is
	// free: a plain single-node ECO advances to epoch 2.
	if code, _ := post(t, hs.URL, "/cluster/commit", `{"txn":"tx1"}`); code != 409 {
		t.Fatalf("re-commit of consumed txn = %d", code)
	}
	cell, to := resizeTarget(t)
	code, body = post(t, hs.URL, "/eco",
		fmt.Sprintf(`{"ops":[{"op":"resize","cell":%q,"to":%q}]}`, cell, to))
	if code != 200 || s.Epoch() != 2 {
		t.Fatalf("eco after barrier: %d %s (epoch %d)", code, body, s.Epoch())
	}
}

// TestPrepareAbortRollsBack proves an aborted prepare leaves the server
// byte-identical to its pre-prepare state and free for later writes.
func TestPrepareAbortRollsBack(t *testing.T) {
	s, hs := newTestServer(t, nil)
	_, before := get(t, hs.URL, "/slack")

	if code, body := post(t, hs.URL, "/cluster/prepare", prepareBody(t, "tx2", 0)); code != 200 {
		t.Fatalf("prepare: %d %s", code, body)
	}
	code, body := post(t, hs.URL, "/cluster/abort", `{"txn":"tx2"}`)
	if code != 200 {
		t.Fatalf("abort: %d %s", code, body)
	}
	var tr TxnResponse
	json.Unmarshal(body, &tr)
	if !tr.Done || tr.Epoch != 0 || s.Epoch() != 0 {
		t.Fatalf("abort response %+v", tr)
	}
	// Aborting again is idempotent (Done=false), never an error.
	code, body = post(t, hs.URL, "/cluster/abort", `{"txn":"tx2"}`)
	json.Unmarshal(body, &tr)
	if code != 200 || tr.Done {
		t.Fatalf("second abort: %d %+v", code, tr)
	}

	_, now := get(t, hs.URL, "/slack")
	if string(before) != string(now) {
		t.Fatalf("abort did not restore baseline:\n%s\n%s", before, now)
	}
	if s.Degraded() {
		t.Fatal("abort degraded the server")
	}
}

// TestPrepareEpochMismatch: a stale coordinator (wrong base epoch) gets a
// clean 409 and the shard state is untouched.
func TestPrepareEpochMismatch(t *testing.T) {
	s, hs := newTestServer(t, nil)
	code, body := post(t, hs.URL, "/cluster/prepare", prepareBody(t, "tx3", 7))
	if code != 409 {
		t.Fatalf("stale prepare = %d %s", code, body)
	}
	if s.Epoch() != 0 || s.pendingTxnID() != "" {
		t.Fatalf("stale prepare left state: epoch %d pending %q", s.Epoch(), s.pendingTxnID())
	}
}

// TestPrepareExpires: a coordinator that dies after prepare cannot wedge
// the worker — the expiry timer aborts, releases the writer, and a later
// single-node commit succeeds at the expected epoch.
func TestPrepareExpires(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) { c.PrepareTimeout = 100 * time.Millisecond })
	_, before := get(t, hs.URL, "/slack")

	if code, body := post(t, hs.URL, "/cluster/prepare", prepareBody(t, "tx4", 0)); code != 200 {
		t.Fatalf("prepare: %d %s", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pendingTxnID() != "" {
		if time.Now().After(deadline) {
			t.Fatal("prepare never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Committing the expired txn must refuse — the shard rolled back.
	if code, _ := post(t, hs.URL, "/cluster/commit", `{"txn":"tx4"}`); code != 409 {
		t.Fatalf("commit of expired txn = %d", code)
	}
	_, now := get(t, hs.URL, "/slack")
	if string(before) != string(now) {
		t.Fatal("expiry did not restore baseline")
	}

	cell, to := resizeTarget(t)
	code, body := post(t, hs.URL, "/eco",
		fmt.Sprintf(`{"ops":[{"op":"resize","cell":%q,"to":%q}]}`, cell, to))
	if code != 200 || s.Epoch() != 1 {
		t.Fatalf("eco after expiry: %d %s (epoch %d)", code, body, s.Epoch())
	}
}

// TestScenarioFilter: a worker restricted to one scenario serves only it,
// reports full-recipe indices, and rejects unknown names.
func TestScenarioFilter(t *testing.T) {
	recipe, _, _ := fixture(t)
	holdName := recipe.Scenarios[1].Name
	s, hs := newTestServer(t, func(c *Config) {
		c.ScenarioFilter = []string{holdName}
		c.Role = "worker"
	})
	set := s.ScenarioSet()
	if len(set) != 1 || set[0].Index != 1 || set[0].Name != holdName {
		t.Fatalf("scenario set %+v", set)
	}
	_, b := get(t, hs.URL, "/slack")
	var sr SlackReport
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scenarios) != 1 || sr.Scenarios[0].Scenario != holdName {
		t.Fatalf("filtered slack %+v", sr)
	}
	_, b = get(t, hs.URL, "/cluster/info")
	var ci ClusterInfo
	if err := json.Unmarshal(b, &ci); err != nil {
		t.Fatal(err)
	}
	if ci.Role != "worker" || len(ci.Scenarios) != 1 || ci.Scenarios[0].Index != 1 {
		t.Fatalf("cluster info %+v", ci)
	}

	cfg := testConfig(t)
	cfg.ScenarioFilter = []string{"no_such_scenario"}
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("unknown scenario filter accepted")
	}
}

// jsonHasEpoch decodes {"epoch":N,...} and compares.
func jsonHasEpoch(t *testing.T, b []byte, want int64) bool {
	t.Helper()
	var v struct {
		Epoch int64 `json:"epoch"`
	}
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v.Epoch == want
}
