package timingd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"newgame/internal/obs"
	"newgame/internal/sta"
	"newgame/internal/triage"
	"newgame/internal/units"
)

// routes wires the HTTP surface. Query endpoints go through the bounded
// admission queue; /healthz, /metrics and the /debug flight-recorder views
// bypass it so operators can always see a saturated server.
func (s *Server) routes() {
	s.mux.HandleFunc("/slack", s.handle("slack", http.MethodGet, s.handleSlack))
	s.mux.HandleFunc("/endpoints", s.handle("endpoints", http.MethodGet, s.handleEndpoints))
	s.mux.HandleFunc("/paths", s.handle("paths", http.MethodGet, s.handlePaths))
	s.mux.HandleFunc("/triage", s.handle("triage", http.MethodGet, s.handleTriage))
	s.mux.HandleFunc("/triage/extract", s.handle("triage.extract", http.MethodGet, s.handleTriageExtract))
	s.mux.HandleFunc("/whatif", s.handle("whatif", http.MethodPost, s.handleWhatIf))
	s.mux.HandleFunc("/eco", s.handle("eco", http.MethodPost, s.handleECO))
	s.mux.HandleFunc("/admin/save", s.handle("save", http.MethodPost, s.handleSave))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("/debug/epochs", s.handleDebugEpochs)
	s.mux.HandleFunc("/debug/slow", s.handleDebugSlow)
	s.clusterRoutes()
}

// reqInfo is the lightweight per-request carrier the render path fills in
// for the flight recorder: the epoch the answer came from and the query
// cache outcome. It rides the context so readSnapshot can report without
// the handler signature changing; unlike a full obs.Trace it costs one
// small allocation, so every request affords one.
type reqInfo struct {
	epoch int64
	cache string
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// apiError carries an HTTP status with a handler error.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// handle adapts a query function to the admission pipeline: shutdown gate,
// bounded queue with 429 backpressure, per-request timeout whose context
// flows into incremental re-timing, and latency observation. The handler
// always waits for its admitted job — the job owns no reference to the
// ResponseWriter, so a timeout surfaces as the job's error, never as a
// write race.
//
// Every request gets a trace identity: an X-Trace-Id header is accepted
// verbatim (shard fan-out will forward it) or minted, and always echoed on
// the response. With ?debug=trace the request additionally records its own
// private span tree — through readSnapshot's render span and the
// context-carried trace into sta.RunCtx/UpdateCtx — and the response is
// wrapped in a TraceReport carrying that tree inline. Untraced requests
// pay only the ID, one reqInfo allocation, and a lock-free ring write.
func (s *Server) handle(route, method string, fn func(ctx context.Context, r *http.Request) ([]byte, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := r.Header.Get("X-Trace-Id")
		var tr *obs.Trace
		if r.URL.Query().Get("debug") == "trace" {
			tr = obs.NewTrace(traceID, "timingd."+route)
			traceID = tr.ID
		} else if traceID == "" {
			traceID = obs.NewTraceID()
		}
		w.Header().Set("X-Trace-Id", traceID)
		info := &reqInfo{epoch: -1}
		status := http.StatusOK
		defer func() {
			s.observe(route, start, status)
			s.recordRequest(start, route, traceID, info, status, tr)
		}()
		if r.Method != method {
			status = http.StatusMethodNotAllowed
			writeError(w, status, method+" required")
			return
		}
		s.closeMu.RLock()
		defer s.closeMu.RUnlock()
		if s.closed {
			status = http.StatusServiceUnavailable
			writeError(w, status, "shutting down")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = withReqInfo(ctx, info)
		if tr != nil {
			ctx = obs.WithTrace(ctx, tr)
		}
		type answer struct {
			body []byte
			err  error
		}
		done := make(chan answer, 1)
		if !s.pool.TrySubmit(func() {
			// The job is the panic boundary for the read path: a crash in
			// a render (or an injected cache fault) answers 500 and the
			// worker survives to drain the queue.
			defer func() {
				if rec := recover(); rec != nil {
					s.count("timingd.panics_recovered")
					done <- answer{nil, fmt.Errorf("internal panic: %v", rec)}
				}
			}()
			b, err := fn(ctx, r)
			done <- answer{b, err}
		}) {
			s.count("timingd.backpressure_429")
			w.Header().Set("Retry-After", "1")
			status = http.StatusTooManyRequests
			writeError(w, status, "request queue full")
			return
		}
		a := <-done
		if a.err != nil {
			switch {
			case ctx.Err() != nil:
				status = http.StatusGatewayTimeout
			default:
				status = http.StatusInternalServerError
				var ae *apiError
				if asAPIError(a.err, &ae) {
					status = ae.status
				}
			}
			writeError(w, status, a.err.Error())
			return
		}
		body := a.body
		if tr != nil {
			tr.Root.End()
			env, err := json.Marshal(TraceReport{
				TraceID:  traceID,
				Spans:    tr.Rec.SpanTree(),
				Response: json.RawMessage(bytes.TrimRight(body, "\n")),
			})
			if err == nil {
				body = append(env, '\n')
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}
}

// recordRequest appends one request to the flight-recorder ring.
func (s *Server) recordRequest(start time.Time, route, traceID string, info *reqInfo, status int, tr *obs.Trace) {
	rec := obs.RequestRecord{
		Start: start, Route: route, TraceID: traceID,
		Epoch: info.epoch, Cache: info.cache,
		Status: status, LatencyMs: msSince(start),
	}
	if tr != nil {
		name, d := tr.Rec.SlowestSpan()
		rec.SlowestChild = name
		rec.SlowestChildMs = float64(d) / float64(time.Millisecond)
	}
	s.flight.Requests.Put(rec)
}

// asAPIError unwraps to *apiError without pulling in errors.As generics
// noise at every call site.
func asAPIError(err error, target **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorBody{Error: msg})
	w.Write(append(b, '\n'))
}

// readSnapshot resolves the current epoch snapshot, serves the query from
// the cache when the rendered answer for this epoch is already known, and
// renders + caches it otherwise. The RLock spans the render, ordering it
// against the post-swap replay; the epoch tag read under the same lock is
// exactly the epoch the data belongs to.
func (s *Server) readSnapshot(ctx context.Context, uri string, render func(sess *session, epoch int64) (any, error)) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sess := s.cur.Load()
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	epoch := sess.epoch
	info := reqInfoFrom(ctx)
	if info != nil {
		info.epoch = epoch
	}
	// A faulty cache degrades to a render, never to a wrong or failed
	// response: a get fault is a miss, a put fault skips caching.
	if err := s.fire(SiteCacheGet); err != nil {
		s.count("timingd.cache.faults")
	} else if b, ok := s.cache.get(epoch, uri); ok {
		s.count("timingd.cache.hits")
		if info != nil {
			info.cache = "hit"
		}
		return b, nil
	}
	s.count("timingd.cache.misses")
	if info != nil {
		info.cache = "miss"
	}
	sp := obs.TraceFrom(ctx).Start("render", nil)
	v, err := render(sess, epoch)
	sp.End()
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	if err := s.fire(SiteCachePut); err != nil {
		s.count("timingd.cache.faults")
	} else {
		s.cache.put(epoch, uri, b)
	}
	return b, nil
}

func (s *Server) handleSlack(ctx context.Context, r *http.Request) ([]byte, error) {
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		return SlackReport{Epoch: epoch, Scenarios: sess.slacks()}, nil
	})
}

func (s *Server) handleEndpoints(ctx context.Context, r *http.Request) ([]byte, error) {
	q := r.URL.Query()
	kind, err := parseKind(q.Get("kind"))
	if err != nil {
		return nil, err
	}
	limit, err := parseInt(q.Get("limit"), 10, 1, 100000)
	if err != nil {
		return nil, err
	}
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		v, err := sess.findView(q.Get("scenario"))
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return EndpointsReport{
			Epoch: epoch, Scenario: v.scenario.Name,
			Endpoints: v.endpoints(kind, limit),
		}, nil
	})
}

func (s *Server) handlePaths(ctx context.Context, r *http.Request) ([]byte, error) {
	q := r.URL.Query()
	kind, err := parseKind(q.Get("kind"))
	if err != nil {
		return nil, err
	}
	k, err := parseInt(q.Get("k"), 5, 1, 1000)
	if err != nil {
		return nil, err
	}
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		v, err := sess.findView(q.Get("scenario"))
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return PathsReport{
			Epoch: epoch, Scenario: v.scenario.Name,
			Paths: v.paths(kind, k),
		}, nil
	})
}

// parseTriageOptions reads the shared /triage query knobs: ?k= bounds the
// per-endpoint worst-path enumeration, ?window= (ps, float) the k-worst
// arrival window. Defaults mirror triage.Options.
func parseTriageOptions(q url.Values) (triage.Options, error) {
	var opts triage.Options
	k, err := parseInt(q.Get("k"), 3, 1, 100)
	if err != nil {
		return opts, err
	}
	opts.K = k
	opts.Window = 10
	if v := q.Get("window"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return opts, badRequest("bad window %q (want positive ps)", v)
		}
		opts.Window = units.Ps(f)
	}
	return opts, nil
}

// handleTriage renders the clustered root-cause report over every served
// scenario. Extraction honors the full-recipe dominance plan: a scenario
// dominated by a sibling skips the k-worst path walks and inherits the
// dominator's segments at merge time.
func (s *Server) handleTriage(ctx context.Context, r *http.Request) ([]byte, error) {
	opts, err := parseTriageOptions(r.URL.Query())
	if err != nil {
		return nil, err
	}
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		extracts := make([]triage.ScenarioExtract, len(sess.views))
		for i, v := range sess.views {
			extracts[i] = triage.ExtractScenario(v.a, s.triagePlan, s.scenarioSet[i].Index, opts)
		}
		return TriageReport{Epoch: epoch, Report: triage.BuildReport(extracts)}, nil
	})
}

// handleTriageExtract renders one scenario's raw relation-graph extract —
// the scatter unit a cluster coordinator gathers from the shard that owns
// the scenario.
func (s *Server) handleTriageExtract(ctx context.Context, r *http.Request) ([]byte, error) {
	q := r.URL.Query()
	opts, err := parseTriageOptions(q)
	if err != nil {
		return nil, err
	}
	name := q.Get("scenario")
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		for i, v := range sess.views {
			if v.scenario.Name == name || (name == "" && i == 0) {
				return TriageExtract{
					Epoch:           epoch,
					ScenarioExtract: triage.ExtractScenario(v.a, s.triagePlan, s.scenarioSet[i].Index, opts),
				}, nil
			}
		}
		return nil, badRequest("unknown scenario %q", name)
	})
}

// opsBody is the request body of /whatif and /eco.
type opsBody struct {
	Ops []Op `json:"ops"`
}

func decodeOps(r *http.Request) ([]Op, error) {
	var body opsBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		return nil, badRequest("bad request body: %v", err)
	}
	if len(body.Ops) == 0 {
		return nil, badRequest("request has no ops")
	}
	return body.Ops, nil
}

func (s *Server) handleWhatIf(ctx context.Context, r *http.Request) ([]byte, error) {
	ops, err := decodeOps(r)
	if err != nil {
		return nil, err
	}
	sp := obs.TraceFrom(ctx).Start("whatif", nil)
	rep, err := s.whatIf(ctx, ops)
	sp.End()
	if err != nil {
		return nil, wrapOpError(err)
	}
	if info := reqInfoFrom(ctx); info != nil {
		info.epoch = rep.Epoch
	}
	return marshalBody(rep)
}

func (s *Server) handleECO(ctx context.Context, r *http.Request) ([]byte, error) {
	ops, err := decodeOps(r)
	if err != nil {
		return nil, err
	}
	sp := obs.TraceFrom(ctx).Start("commit", nil)
	rep, err := s.commit(ctx, ops)
	sp.End()
	if err != nil {
		return nil, wrapOpError(err)
	}
	if info := reqInfoFrom(ctx); info != nil {
		info.epoch = rep.Epoch
	}
	return marshalBody(rep)
}

// wrapOpError classifies writer errors: validation failures (unknown
// names, incompatible masters) are the client's fault.
func wrapOpError(err error) error {
	if _, ok := err.(*apiError); ok {
		return err
	}
	msg := err.Error()
	for _, pat := range []string{"unknown", "not pin-compatible", "not in scenario", "not a buffer", "no load", "empty op", "moves no loads"} {
		if strings.Contains(msg, pat) {
			return badRequest("%s", msg)
		}
	}
	return err
}

func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// handleHealthz bypasses the queue: liveness must be observable even when
// the queue is saturated. Beyond the bare liveness bit it reports the
// served epoch, the degraded flag, uptime, and flight-recorder occupancy,
// so one probe tells an operator what state the daemon is actually in.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sess := s.cur.Load()
	sess.mu.RLock()
	h := Health{
		Status:    "ok",
		Epoch:     sess.epoch,
		Scenarios: len(sess.views),
		Cells:     len(sess.d.Cells),
		Role:      s.role(),
	}
	sess.mu.RUnlock()
	if s.degraded.Load() {
		h.Status = "degraded"
		h.Degraded = true
	}
	h.UptimeSec = time.Since(s.start).Seconds()
	h.Snapshot = s.snapshotHealth()
	h.FlightRequests = s.flight.Requests.Len()
	h.FlightRequestsCap = s.flight.Requests.Cap()
	h.FlightCommits = s.flight.Commits.Len()
	h.FlightCommitsCap = s.flight.Commits.Cap()
	writeJSON(w, h)
}

// handleMetrics bypasses the queue and serves the obs metrics: the JSON
// dump by default, Prometheus text exposition with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		writeError(w, http.StatusNotFound, "metrics recording disabled")
		return
	}
	hits, misses := s.cache.stats()
	s.cfg.Obs.Gauge("timingd.cache.hit_total").Set(float64(hits))
	s.cfg.Obs.Gauge("timingd.cache.miss_total").Set(float64(misses))
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.cfg.Obs.WritePromText(w); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.cfg.Obs.WriteMetricsJSON(w); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleDebugRequests serves the request ring, newest first. Bypasses the
// queue: the flight recorder exists to diagnose a saturated or degraded
// server, so it must answer then. ?limit= caps the returned records.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	limit, err := parseInt(r.URL.Query().Get("limit"), 0, 1, 1<<20)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, DebugRequestsReport{
		Requests: s.flight.Requests.Snapshot(limit),
		Dropped:  s.flight.Requests.Dropped(),
	})
}

// handleDebugEpochs serves the commit ring: the per-phase audit timeline
// of the last M commits, newest first.
func (s *Server) handleDebugEpochs(w http.ResponseWriter, r *http.Request) {
	limit, err := parseInt(r.URL.Query().Get("limit"), 0, 1, 1<<20)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, DebugEpochsReport{
		Commits: s.flight.Commits.Snapshot(limit),
		Dropped: s.flight.Commits.Dropped(),
	})
}

// handleDebugSlow serves the recorded requests at or above a latency
// threshold (?threshold_ms=, default 10), newest first.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	threshold := 10.0
	if v := r.URL.Query().Get("threshold_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad threshold_ms %q", v))
			return
		}
		threshold = f
	}
	all := s.flight.Requests.Snapshot(0)
	slow := make([]obs.RequestRecord, 0, len(all))
	for _, rec := range all {
		if rec.LatencyMs >= threshold {
			slow = append(slow, rec)
		}
	}
	writeJSON(w, DebugSlowReport{ThresholdMs: threshold, Requests: slow})
}

// writeJSON answers 200 with a JSON body and trailing newline.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func parseKind(s string) (sta.CheckKind, error) {
	switch s {
	case "", "setup":
		return sta.Setup, nil
	case "hold":
		return sta.Hold, nil
	default:
		return sta.Setup, badRequest("unknown check kind %q", s)
	}
}

func parseInt(s string, def, min, max int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < min || v > max {
		return 0, badRequest("bad integer %q (want %d..%d)", s, min, max)
	}
	return v, nil
}
