package timingd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"newgame/internal/sta"
)

// routes wires the HTTP surface. Query endpoints go through the bounded
// admission queue; /healthz and /metrics bypass it so operators can always
// see a saturated server.
func (s *Server) routes() {
	s.mux.HandleFunc("/slack", s.handle("slack", http.MethodGet, s.handleSlack))
	s.mux.HandleFunc("/endpoints", s.handle("endpoints", http.MethodGet, s.handleEndpoints))
	s.mux.HandleFunc("/paths", s.handle("paths", http.MethodGet, s.handlePaths))
	s.mux.HandleFunc("/whatif", s.handle("whatif", http.MethodPost, s.handleWhatIf))
	s.mux.HandleFunc("/eco", s.handle("eco", http.MethodPost, s.handleECO))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
}

// apiError carries an HTTP status with a handler error.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// handle adapts a query function to the admission pipeline: shutdown gate,
// bounded queue with 429 backpressure, per-request timeout whose context
// flows into incremental re-timing, and latency observation. The handler
// always waits for its admitted job — the job owns no reference to the
// ResponseWriter, so a timeout surfaces as the job's error, never as a
// write race.
func (s *Server) handle(route, method string, fn func(ctx context.Context, r *http.Request) ([]byte, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer s.observe(route, start)
		if r.Method != method {
			writeError(w, http.StatusMethodNotAllowed, method+" required")
			return
		}
		s.closeMu.RLock()
		defer s.closeMu.RUnlock()
		if s.closed {
			writeError(w, http.StatusServiceUnavailable, "shutting down")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		type answer struct {
			body []byte
			err  error
		}
		done := make(chan answer, 1)
		if !s.pool.TrySubmit(func() {
			// The job is the panic boundary for the read path: a crash in
			// a render (or an injected cache fault) answers 500 and the
			// worker survives to drain the queue.
			defer func() {
				if rec := recover(); rec != nil {
					s.count("timingd.panics_recovered")
					done <- answer{nil, fmt.Errorf("internal panic: %v", rec)}
				}
			}()
			b, err := fn(ctx, r)
			done <- answer{b, err}
		}) {
			s.count("timingd.backpressure_429")
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "request queue full")
			return
		}
		a := <-done
		if a.err != nil {
			switch {
			case ctx.Err() != nil:
				writeError(w, http.StatusGatewayTimeout, a.err.Error())
			default:
				status := http.StatusInternalServerError
				var ae *apiError
				if asAPIError(a.err, &ae) {
					status = ae.status
				}
				writeError(w, status, a.err.Error())
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(a.body)
	}
}

// asAPIError unwraps to *apiError without pulling in errors.As generics
// noise at every call site.
func asAPIError(err error, target **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorBody{Error: msg})
	w.Write(append(b, '\n'))
}

// readSnapshot resolves the current epoch snapshot, serves the query from
// the cache when the rendered answer for this epoch is already known, and
// renders + caches it otherwise. The RLock spans the render, ordering it
// against the post-swap replay; the epoch tag read under the same lock is
// exactly the epoch the data belongs to.
func (s *Server) readSnapshot(ctx context.Context, uri string, render func(sess *session, epoch int64) (any, error)) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sess := s.cur.Load()
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	epoch := sess.epoch
	// A faulty cache degrades to a render, never to a wrong or failed
	// response: a get fault is a miss, a put fault skips caching.
	if err := s.fire(SiteCacheGet); err != nil {
		s.count("timingd.cache.faults")
	} else if b, ok := s.cache.get(epoch, uri); ok {
		s.count("timingd.cache.hits")
		return b, nil
	}
	s.count("timingd.cache.misses")
	v, err := render(sess, epoch)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	if err := s.fire(SiteCachePut); err != nil {
		s.count("timingd.cache.faults")
	} else {
		s.cache.put(epoch, uri, b)
	}
	return b, nil
}

func (s *Server) handleSlack(ctx context.Context, r *http.Request) ([]byte, error) {
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		return SlackReport{Epoch: epoch, Scenarios: sess.slacks()}, nil
	})
}

func (s *Server) handleEndpoints(ctx context.Context, r *http.Request) ([]byte, error) {
	q := r.URL.Query()
	kind, err := parseKind(q.Get("kind"))
	if err != nil {
		return nil, err
	}
	limit, err := parseInt(q.Get("limit"), 10, 1, 100000)
	if err != nil {
		return nil, err
	}
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		v, err := sess.findView(q.Get("scenario"))
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return EndpointsReport{
			Epoch: epoch, Scenario: v.scenario.Name,
			Endpoints: v.endpoints(kind, limit),
		}, nil
	})
}

func (s *Server) handlePaths(ctx context.Context, r *http.Request) ([]byte, error) {
	q := r.URL.Query()
	kind, err := parseKind(q.Get("kind"))
	if err != nil {
		return nil, err
	}
	k, err := parseInt(q.Get("k"), 5, 1, 1000)
	if err != nil {
		return nil, err
	}
	return s.readSnapshot(ctx, r.URL.RequestURI(), func(sess *session, epoch int64) (any, error) {
		v, err := sess.findView(q.Get("scenario"))
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return PathsReport{
			Epoch: epoch, Scenario: v.scenario.Name,
			Paths: v.paths(kind, k),
		}, nil
	})
}

// opsBody is the request body of /whatif and /eco.
type opsBody struct {
	Ops []Op `json:"ops"`
}

func decodeOps(r *http.Request) ([]Op, error) {
	var body opsBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		return nil, badRequest("bad request body: %v", err)
	}
	if len(body.Ops) == 0 {
		return nil, badRequest("request has no ops")
	}
	return body.Ops, nil
}

func (s *Server) handleWhatIf(ctx context.Context, r *http.Request) ([]byte, error) {
	ops, err := decodeOps(r)
	if err != nil {
		return nil, err
	}
	rep, err := s.whatIf(ctx, ops)
	if err != nil {
		return nil, wrapOpError(err)
	}
	return marshalBody(rep)
}

func (s *Server) handleECO(ctx context.Context, r *http.Request) ([]byte, error) {
	ops, err := decodeOps(r)
	if err != nil {
		return nil, err
	}
	rep, err := s.commit(ctx, ops)
	if err != nil {
		return nil, wrapOpError(err)
	}
	return marshalBody(rep)
}

// wrapOpError classifies writer errors: validation failures (unknown
// names, incompatible masters) are the client's fault.
func wrapOpError(err error) error {
	if _, ok := err.(*apiError); ok {
		return err
	}
	msg := err.Error()
	for _, pat := range []string{"unknown", "not pin-compatible", "not in scenario", "not a buffer", "no load", "empty op", "moves no loads"} {
		if strings.Contains(msg, pat) {
			return badRequest("%s", msg)
		}
	}
	return err
}

func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// handleHealthz bypasses the queue: liveness must be observable even when
// the queue is saturated.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sess := s.cur.Load()
	sess.mu.RLock()
	h := Health{
		Status:    "ok",
		Epoch:     sess.epoch,
		Scenarios: len(sess.views),
		Cells:     len(sess.d.Cells),
	}
	sess.mu.RUnlock()
	if s.degraded.Load() {
		h.Status = "degraded"
	}
	b, _ := json.Marshal(h)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// handleMetrics bypasses the queue and serves the obs metrics dump.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		writeError(w, http.StatusNotFound, "metrics recording disabled")
		return
	}
	hits, misses := s.cache.stats()
	s.cfg.Obs.Gauge("timingd.cache.hit_total").Set(float64(hits))
	s.cfg.Obs.Gauge("timingd.cache.miss_total").Set(float64(misses))
	w.Header().Set("Content-Type", "application/json")
	if err := s.cfg.Obs.WriteMetricsJSON(w); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func parseKind(s string) (sta.CheckKind, error) {
	switch s {
	case "", "setup":
		return sta.Setup, nil
	case "hold":
		return sta.Hold, nil
	default:
		return sta.Setup, badRequest("unknown check kind %q", s)
	}
}

func parseInt(s string, def, min, max int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < min || v > max {
		return 0, badRequest("bad integer %q (want %d..%d)", s, min, max)
	}
	return v, nil
}
