package timingd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"newgame/internal/obs"
)

// This file splits the writer pipeline into an explicit two-phase protocol
// so a cluster coordinator can drive an epoch barrier across shards:
//
//	prepare  — resolve + apply + re-time the op batch on the shadow, keep
//	           the edits live and the writer lock held, publish nothing;
//	commit   — bump the epoch, swap the shadow in, log and replay;
//	abort    — undo the edits exactly and release the writer.
//
// The single-node commit() is prepare immediately followed by commit, so
// both paths share one implementation and the chaos-test semantics (fault
// sites, degraded transitions, flight-recorder audit) are identical.
//
// A prepared transaction holds writerMu across the prepare→commit/abort
// window — sync.Mutex explicitly permits unlocking from a different
// goroutine, which is exactly what the commit/abort HTTP handlers do. A
// coordinator that dies between phases cannot wedge the worker: every
// registered prepare carries an abort timer (Config.PrepareTimeout) that
// rolls the shadow back and releases the writer.

// preparedTxn is one in-flight prepared-but-uncommitted edit batch. The
// writer lock is held from prepare until exactly one of commitPrepared or
// abortPrepared consumes the transaction.
type preparedTxn struct {
	id         string
	baseEpoch  int64
	newEpoch   int64
	sh         *session
	edits      []*edit
	mark       int
	structural bool
	rep        *WhatIfReport
	ops        []Op
	cr         obs.CommitRecord
	timer      *time.Timer
}

// errPrepareExpired is the abort cause when the coordinator never came back
// with a commit or abort inside PrepareTimeout.
var errPrepareExpired = fmt.Errorf("prepared transaction expired without commit or abort")

// finishRecord completes the transaction's flight-recorder entry.
func (s *Server) finishRecord(p *preparedTxn, err error) {
	if err != nil {
		p.cr.Err = err.Error()
	}
	p.cr.TotalMs = msSince(p.cr.Start)
	s.flight.Commits.Put(p.cr)
}

// prepare runs the pre-publish half of a commit: it takes the writer lock,
// resolves and applies ops to the shadow, re-times it, and returns with the
// lock STILL HELD and the edits live. baseEpoch, when non-nil, must match
// the current epoch (the cluster barrier's staleness check); a mismatch is
// a clean 409. On any error the shadow is rolled back and the lock
// released.
func (s *Server) prepare(ctx context.Context, ops []Op, baseEpoch *int64) (*preparedTxn, error) {
	s.writerMu.Lock()
	p := &preparedTxn{
		sh:  s.shadow,
		ops: ops,
		cr:  obs.CommitRecord{Start: time.Now(), OpsApplied: len(ops)},
	}
	if tr := obs.TraceFrom(ctx); tr != nil {
		p.cr.TraceID = tr.ID
	}
	fail := func(err error) (*preparedTxn, error) {
		s.finishRecord(p, err)
		s.writerMu.Unlock()
		return nil, err
	}
	if s.degraded.Load() {
		return fail(fmt.Errorf("server degraded by earlier failed commit; restart required"))
	}
	p.baseEpoch = s.epoch.Load()
	if baseEpoch != nil && *baseEpoch != p.baseEpoch {
		return fail(&apiError{
			status: http.StatusConflict,
			msg:    fmt.Sprintf("epoch mismatch: shard at epoch %d, prepare wants base %d", p.baseEpoch, *baseEpoch),
		})
	}
	p.newEpoch = p.baseEpoch + 1

	sh := p.sh
	// The whole pre-swap phase runs guarded: a panic in it means the
	// shadow's state is unknown, so the server degrades rather than risk
	// publishing or reusing a half-edited snapshot. Locks are deferred so
	// the panic path cannot leak them.
	err := guard(func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		phase := time.Now()
		if err := s.fire(SiteCommitResolve); err != nil {
			return err
		}
		edits, err := sh.resolve(ops)
		p.cr.ResolveMs = msSince(phase)
		if err != nil {
			return err
		}
		p.edits = edits
		p.rep = &WhatIfReport{Epoch: p.newEpoch, Before: sh.slacks(), Committed: true}
		p.mark = sh.d.NameMark()
		if err := s.fire(SiteCommitApply); err != nil {
			return err
		}
		phase = time.Now()
		p.structural, err = sh.applyEdits(edits)
		if err == nil {
			err = sh.retime(ctx, s.cfg, p.structural)
		}
		p.cr.ApplyMs = msSince(phase)
		if err == nil {
			err = s.fire(SiteCommitSwap)
		}
		if err != nil {
			// Roll the shadow back to match cur; the undo's own re-time
			// must not be cancellable or the snapshots diverge.
			sh.undoEdits(edits, p.mark)
			if rerr := sh.retime(context.Background(), s.cfg, p.structural); rerr != nil {
				s.degraded.Store(true)
			}
			return err
		}
		p.rep.After = sh.slacks()
		return nil
	})
	if err != nil {
		if isRecoveredPanic(err) {
			s.degraded.Store(true)
			s.count("timingd.panics_recovered")
		}
		return fail(err)
	}
	return p, nil
}

// commitPrepared publishes a prepared transaction: epoch bump, snapshot
// swap, cache purge, epoch-log append, replay onto the retired snapshot,
// writer lock release. The commit is irrevocable once the swap happens; a
// replay failure degrades the server but the commit stands, exactly as in
// the single-node pipeline.
func (s *Server) commitPrepared(p *preparedTxn) *WhatIfReport {
	defer s.writerMu.Unlock()
	sh := p.sh
	phase := time.Now()
	newEpoch := s.epoch.Add(1)
	// The retiring snapshot may still have straggler readers holding RLock;
	// the shadow about to be published may too (from two swaps ago), so its
	// epoch tag is written under the lock.
	sh.mu.Lock()
	sh.epoch = newEpoch
	sh.mu.Unlock()
	old := s.cur.Swap(sh)
	p.cr.CachePurged = s.cache.purge()
	p.cr.Epoch = newEpoch
	p.cr.SwapMs = msSince(phase)
	s.count("timingd.commits")
	if s.cfg.Obs != nil {
		s.cfg.Obs.Gauge("timingd.epoch").Set(float64(newEpoch))
	}
	// The commit is visible; make it durable. Runs under writerMu, so the
	// log's record order is the epoch order.
	s.logCommit(newEpoch, p.ops)

	// Replay onto the retired snapshot. Stragglers still reading it hold
	// RLock; the edit waits for them. Not cancellable: the commit is
	// already visible. Guarded for the same reason as prepare — a panic
	// mid-replay leaves the retired snapshot unusable as the next shadow.
	phase = time.Now()
	rerr := guard(func() error {
		if err := s.fire(SiteCommitReplay); err != nil {
			return err
		}
		old.mu.Lock()
		defer old.mu.Unlock()
		oldEdits, err := old.resolve(p.ops)
		if err == nil {
			var oldStructural bool
			oldStructural, err = old.applyEdits(oldEdits)
			if err == nil {
				err = old.retime(context.Background(), s.cfg, oldStructural)
			}
		}
		old.epoch = newEpoch
		return err
	})
	p.cr.ReplayMs = msSince(phase)
	if rerr != nil {
		if isRecoveredPanic(rerr) {
			s.count("timingd.panics_recovered")
		}
		s.degraded.Store(true)
		s.finishRecord(p, rerr)
		return p.rep // the commit itself succeeded
	}
	s.shadow = old
	s.finishRecord(p, nil)
	return p.rep
}

// abortPrepared rolls a prepared transaction back — exact netlist undo plus
// a non-cancellable re-time — and releases the writer. A rollback failure
// degrades the server: the shadow can no longer be trusted to match the
// published snapshot.
func (s *Server) abortPrepared(p *preparedTxn, cause error) {
	defer s.writerMu.Unlock()
	sh := p.sh
	err := guard(func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.undoEdits(p.edits, p.mark)
		return sh.retime(context.Background(), s.cfg, p.structural)
	})
	if err != nil {
		if isRecoveredPanic(err) {
			s.count("timingd.panics_recovered")
		}
		s.degraded.Store(true)
	}
	s.count("timingd.barrier.aborts")
	s.finishRecord(p, cause)
}

// registerPending parks a prepared transaction for a later commit/abort
// call and arms its expiry timer. Caller must hold the transaction (i.e.
// prepare succeeded and nothing consumed it yet).
func (s *Server) registerPending(p *preparedTxn) {
	s.pendingMu.Lock()
	s.pending = p
	s.pendingMu.Unlock()
	p.timer = time.AfterFunc(s.cfg.PrepareTimeout, func() {
		if q := s.takePending(p.id); q != nil {
			s.count("timingd.barrier.expired")
			s.abortPrepared(q, errPrepareExpired)
		}
	})
}

// takePending atomically claims the pending transaction with the given id
// (any pending transaction when id is empty). Exactly one of the commit
// handler, the abort handler, the expiry timer, or Close wins.
func (s *Server) takePending(id string) *preparedTxn {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	p := s.pending
	if p == nil || (id != "" && p.id != id) {
		return nil
	}
	s.pending = nil
	return p
}

// pendingTxnID reports the id of the in-flight prepared transaction, if
// any ("" otherwise).
func (s *Server) pendingTxnID() string {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	if s.pending == nil {
		return ""
	}
	return s.pending.id
}

// --- HTTP surface -----------------------------------------------------

// clusterRoutes registers the worker-side barrier endpoints. They bypass
// the admission pool on purpose: an epoch barrier must not be starved or
// 429'd by read traffic, and the writer lock already serializes them.
func (s *Server) clusterRoutes() {
	s.mux.HandleFunc("/cluster/prepare", s.handleClusterPrepare)
	s.mux.HandleFunc("/cluster/commit", s.handleClusterCommit)
	s.mux.HandleFunc("/cluster/abort", s.handleClusterAbort)
	s.mux.HandleFunc("/cluster/info", s.handleClusterInfo)
}

// handleClusterPrepare is phase one of the epoch barrier: validate, apply
// and re-time the batch on the shadow, answer with the epoch this shard
// will move to, and hold everything pending the coordinator's decision.
func (s *Server) handleClusterPrepare(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() { s.observe("cluster.prepare", start, status) }()
	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		writeError(w, status, "POST required")
		return
	}
	var req PrepareRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Txn == "" || len(req.Ops) == 0 {
		status = http.StatusBadRequest
		writeError(w, status, "prepare needs a txn id and ops")
		return
	}
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		status = http.StatusServiceUnavailable
		writeError(w, status, "shutting down")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	p, err := s.prepare(ctx, req.Ops, &req.BaseEpoch)
	if err != nil {
		status = http.StatusInternalServerError
		var ae *apiError
		if asAPIError(wrapOpError(err), &ae) {
			status = ae.status
		}
		writeError(w, status, err.Error())
		return
	}
	p.id = req.Txn
	s.registerPending(p)
	writeJSON(w, PrepareResponse{Txn: p.id, Epoch: p.newEpoch, Report: p.rep})
}

// handleClusterCommit is phase two: publish the prepared transaction. An
// unknown txn is a 409 — the prepare expired or was aborted, so the
// coordinator must treat the shard as NOT committed.
func (s *Server) handleClusterCommit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() { s.observe("cluster.commit", start, status) }()
	txn, ok := s.decodeTxn(w, r, &status)
	if !ok {
		return
	}
	p := s.takePending(txn)
	if p == nil {
		status = http.StatusConflict
		writeError(w, status, fmt.Sprintf("no prepared transaction %q (expired or aborted)", txn))
		return
	}
	p.timer.Stop()
	rep := s.commitPrepared(p)
	writeJSON(w, TxnResponse{Txn: txn, Epoch: rep.Epoch, Done: true})
}

// handleClusterAbort rolls a prepared transaction back. Aborting an
// unknown txn is idempotent success — the expiry timer may have won.
func (s *Server) handleClusterAbort(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	defer func() { s.observe("cluster.abort", start, status) }()
	txn, ok := s.decodeTxn(w, r, &status)
	if !ok {
		return
	}
	p := s.takePending(txn)
	if p == nil {
		writeJSON(w, TxnResponse{Txn: txn, Epoch: s.epoch.Load(), Done: false})
		return
	}
	p.timer.Stop()
	s.abortPrepared(p, fmt.Errorf("aborted by coordinator"))
	writeJSON(w, TxnResponse{Txn: txn, Epoch: s.epoch.Load(), Done: true})
}

func (s *Server) decodeTxn(w http.ResponseWriter, r *http.Request, status *int) (string, bool) {
	if r.Method != http.MethodPost {
		*status = http.StatusMethodNotAllowed
		writeError(w, *status, "POST required")
		return "", false
	}
	var req TxnRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.Txn == "" {
		*status = http.StatusBadRequest
		writeError(w, *status, "request needs a txn id")
		return "", false
	}
	return req.Txn, true
}

// handleClusterInfo reports this shard's role, epoch and scenario set —
// what a coordinator (or operator) needs to place it in the ring.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, ClusterInfo{
		Role:       s.role(),
		Epoch:      s.epoch.Load(),
		Degraded:   s.degraded.Load(),
		Scenarios:  s.ScenarioSet(),
		PendingTxn: s.pendingTxnID(),
	})
}

func (s *Server) role() string {
	if s.cfg.Role == "" {
		return "single"
	}
	return s.cfg.Role
}

// ScenarioSet returns the scenarios this server serves, each tagged with
// its index in the full recipe order — the canonical ordering a
// coordinator merges shard answers in.
func (s *Server) ScenarioSet() []ScenarioRef {
	out := make([]ScenarioRef, len(s.scenarioSet))
	copy(out, s.scenarioSet)
	return out
}

// Degraded reports whether a half-failed commit has poisoned the server.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// scenarioSubset resolves a scenario-name filter against the full recipe
// order: the kept scenarios stay in recipe order regardless of filter
// order, and each carries its full-recipe index. An empty filter keeps
// everything; an unknown name is a configuration error.
func scenarioSubset(full []ScenarioRef, filter []string) ([]ScenarioRef, error) {
	if len(filter) == 0 {
		return full, nil
	}
	want := make(map[string]bool, len(filter))
	for _, name := range filter {
		want[name] = true
	}
	var kept []ScenarioRef
	for _, ref := range full {
		if want[ref.Name] {
			kept = append(kept, ref)
			delete(want, ref.Name)
		}
	}
	if len(want) > 0 {
		for name := range want {
			return nil, fmt.Errorf("timingd: scenario filter names unknown scenario %q", name)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("timingd: scenario filter keeps no scenarios")
	}
	return kept, nil
}
