package timingd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosHook is a deterministic fault schedule: every seam firing gets a
// sequence number, and fixed moduli decide which firings sleep, fail, or
// panic. Determinism matters — the test asserts each fault kind actually
// fired, and a flaky schedule would flake the assertion.
type chaosHook struct {
	n                    atomic.Int64
	delays, errs, panics atomic.Int64
	panicSites           map[FaultSite]bool // sites allowed to panic
	errSites             map[FaultSite]bool // sites allowed to error
}

func (h *chaosHook) fire(site FaultSite) error {
	n := h.n.Add(1)
	switch {
	case n%31 == 0 && h.panicSites[site]:
		h.panics.Add(1)
		panic(fmt.Sprintf("injected panic at %s (firing %d)", site, n))
	case n%23 == 0 && h.errSites[site]:
		h.errs.Add(1)
		return fmt.Errorf("injected fault at %s (firing %d)", site, n)
	case n%17 == 0:
		h.delays.Add(1)
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// TestChaosMixedLoad runs concurrent readers against a committing writer
// while the hook injects delays everywhere, errors on the cache and the
// writer's resolve step, and panics on the read-path cache. Contract: the
// daemon absorbs all of it — no crash, no degraded mode, and every
// response that reports an epoch is byte-identical to every other
// response for the same (epoch, query), faulty cache or not.
func TestChaosMixedLoad(t *testing.T) {
	hook := &chaosHook{
		panicSites: map[FaultSite]bool{SiteCacheGet: true},
		errSites:   map[FaultSite]bool{SiteCacheGet: true, SiteCachePut: true, SiteCommitResolve: true},
	}
	_, hs := newTestServer(t, func(c *Config) {
		c.Hooks = &Hooks{Fire: hook.fire}
	})
	cell, to := resizeTarget(t)
	oldType := cellType(t, cell)

	// byEpoch pins the replay guarantee: /slack bodies carry their epoch,
	// so two equal-epoch answers must be byte-equal even when one was
	// served pre-swap and the other from the replayed shadow after the
	// next commit made it current again.
	var mu sync.Mutex
	byEpoch := map[int64]string{}
	record := func(body []byte) {
		var rep SlackReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Errorf("bad /slack body: %v", err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := byEpoch[rep.Epoch]; ok && prev != string(body) {
			t.Errorf("epoch %d served two different /slack bodies:\n%s\nvs\n%s", rep.Epoch, prev, body)
		}
		byEpoch[rep.Epoch] = string(body)
	}

	const readers = 4
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				code, body := get(t, hs.URL, "/slack")
				switch code {
				case http.StatusOK:
					record(body)
				case http.StatusInternalServerError, http.StatusTooManyRequests, http.StatusGatewayTimeout:
					// injected cache panic / backpressure: acceptable, retryable
				default:
					t.Errorf("reader %d: unexpected /slack status %d: %s", id, code, body)
				}
				if j%3 == 0 {
					get(t, hs.URL, "/endpoints?limit=3")
					get(t, hs.URL, "/paths?k=2")
				}
			}
		}(i)
	}
	// The writer ping-pongs one cell between two masters. Injected
	// resolve faults 500 individual commits; those must leave no trace.
	wg.Add(1)
	go func() {
		defer wg.Done()
		target := to
		for j := 0; j < 12; j++ {
			code, body := post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: target}))
			switch code {
			case http.StatusOK:
				if target == to {
					target = oldType
				} else {
					target = to
				}
			case http.StatusInternalServerError:
				if !strings.Contains(string(body), "injected fault") {
					t.Errorf("writer: unexpected 500: %s", body)
				}
			default:
				t.Errorf("writer: unexpected /eco status %d: %s", code, body)
			}
		}
	}()
	wg.Wait()

	if code, body := get(t, hs.URL, "/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("server unhealthy after chaos: %d %s", code, body)
	}
	if hook.delays.Load() == 0 || hook.errs.Load() == 0 || hook.panics.Load() == 0 {
		t.Fatalf("fault schedule incomplete: delays=%d errs=%d panics=%d (raise load if this fires)",
			hook.delays.Load(), hook.errs.Load(), hook.panics.Load())
	}
	if len(byEpoch) < 2 {
		t.Fatalf("load produced only %d distinct epochs; commits did not interleave with reads", len(byEpoch))
	}
}

// cellType reads a cell's current master from the shared fixture design.
func cellType(t testing.TB, name string) string {
	t.Helper()
	_, _, d := fixture(t)
	for _, c := range d.Cells {
		if c.Name == name {
			return c.TypeName
		}
	}
	t.Fatalf("cell %q not in fixture", name)
	return ""
}

// TestChaosReplayPanicDegrades injects a panic into the replay that
// follows a successful swap. The commit must stand (it was already
// visible), reads must keep serving the new epoch, and the server must
// refuse further writes as degraded rather than let the snapshots drift.
func TestChaosReplayPanicDegrades(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	s, hs := newTestServer(t, func(c *Config) {
		c.Hooks = &Hooks{Fire: func(site FaultSite) error {
			if site == SiteCommitReplay && armed.Swap(false) {
				panic("injected replay panic")
			}
			return nil
		}}
	})
	cell, to := resizeTarget(t)

	code, body := post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != http.StatusOK {
		t.Fatalf("commit should survive a replay panic (already visible): %d %s", code, body)
	}
	var rep WhatIfReport
	if err := json.Unmarshal(body, &rep); err != nil || !rep.Committed || rep.Epoch != 1 {
		t.Fatalf("bad commit report: %v %s", err, body)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}

	if code, body := get(t, hs.URL, "/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"status":"degraded"`) {
		t.Fatalf("want degraded health after replay panic: %d %s", code, body)
	}
	code, body = post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "degraded") {
		t.Fatalf("degraded server must refuse writes: %d %s", code, body)
	}
	code, body = post(t, hs.URL, "/whatif", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "degraded") {
		t.Fatalf("degraded server must refuse what-ifs: %d %s", code, body)
	}

	// Reads still answer, from the committed epoch.
	code, body = get(t, hs.URL, "/slack")
	if code != http.StatusOK {
		t.Fatalf("degraded server must keep serving reads: %d %s", code, body)
	}
	var sr SlackReport
	if err := json.Unmarshal(body, &sr); err != nil || sr.Epoch != 1 {
		t.Fatalf("reads must serve the committed epoch: %v %s", err, body)
	}
}

// TestChaosCommitPanicDegrades injects a panic just before the swap: the
// shadow was edited and re-timed but never published, so the server can't
// trust it and must degrade without bumping the epoch.
func TestChaosCommitPanicDegrades(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	s, hs := newTestServer(t, func(c *Config) {
		c.Hooks = &Hooks{Fire: func(site FaultSite) error {
			if site == SiteCommitSwap && armed.Swap(false) {
				panic("injected pre-swap panic")
			}
			return nil
		}}
	})
	cell, to := resizeTarget(t)

	code, body := post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "recovered panic") {
		t.Fatalf("want recovered panic answer: %d %s", code, body)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("failed commit must not bump the epoch: got %d", got)
	}
	if code, body := get(t, hs.URL, "/healthz"); !strings.Contains(string(body), `"status":"degraded"`) {
		t.Fatalf("want degraded after mid-commit panic: %d %s", code, body)
	}
	if code, body := get(t, hs.URL, "/slack"); code != http.StatusOK {
		t.Fatalf("reads must survive: %d %s", code, body)
	}
}

// TestChaosErrorBeforeApplyIsClean injects a plain error between resolve
// and apply: nothing was mutated, so the commit fails cleanly, the server
// stays healthy, and the next commit goes through with the next epoch.
func TestChaosErrorBeforeApplyIsClean(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	s, hs := newTestServer(t, func(c *Config) {
		c.Hooks = &Hooks{Fire: func(site FaultSite) error {
			if site == SiteCommitApply && armed.Swap(false) {
				return fmt.Errorf("injected apply fault")
			}
			return nil
		}}
	})
	cell, to := resizeTarget(t)

	code, body := post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "injected apply fault") {
		t.Fatalf("want injected fault surfaced: %d %s", code, body)
	}
	if code, body := get(t, hs.URL, "/healthz"); !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("clean pre-apply failure must not degrade: %d %s", code, body)
	}
	code, body = post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != http.StatusOK {
		t.Fatalf("retry after clean failure: %d %s", code, body)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
}

// TestChaosCloseDrains closes the server while a slow injected delay is
// in flight: Close must wait for the admitted job, and requests arriving
// after the close gate must answer 503, not hang or crash.
func TestChaosCloseDrains(t *testing.T) {
	inFlight := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	s, hs := newTestServer(t, func(c *Config) {
		c.Hooks = &Hooks{Fire: func(site FaultSite) error {
			if site == SiteCacheGet {
				once.Do(func() {
					inFlight <- struct{}{}
					<-release
				})
			}
			return nil
		}}
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, hs.URL, "/slack") // parks inside the hook
	}()
	<-inFlight

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		s.Close()
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a query was still in flight")
	case <-time.After(30 * time.Millisecond):
	}

	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain after the slow query finished")
	}
	<-done

	code, body := get(t, hs.URL, "/slack")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-close request: %d %s, want 503", code, body)
	}
}
