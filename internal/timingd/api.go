// Package timingd is the resident timing-signoff service: it loads the
// design, libraries and MCMM scenario set once, keeps the levelized timing
// graphs of every scenario resident, and answers interactive queries over
// HTTP/JSON — the daemon counterpart of the batch closure flow. A signoff
// ECO loop asks the same questions over and over ("what is WNS now", "show
// me the k worst paths", "what if I upsize this cell"); re-reading the
// design and re-running full STA for each question is exactly the
// turnaround-time trap the paper's Figure 1 loop falls into, so the daemon
// amortizes the load once and serves every subsequent question from warm
// graphs, with incremental re-timing for the what-ifs.
//
// Concurrency model (see DESIGN.md §10): reads run against an immutable
// epoch snapshot behind an atomic pointer and never block behind an ECO
// commit; the single writer mutates a shadow snapshot and swaps it in,
// then replays the committed ops onto the retired snapshot, which becomes
// the next shadow. Every response carries the epoch it was computed at,
// which is what makes concurrent runs replayable byte-for-byte.
package timingd

import (
	"encoding/json"

	"newgame/internal/obs"
	"newgame/internal/triage"
	"newgame/internal/units"
)

// Op is one netlist edit in a what-if or ECO request.
type Op struct {
	// Kind selects the edit: "resize" retypes Cell in place to the master
	// To (pin-compatible variant — Vt swap or drive change); "buffer"
	// splits the loads named in Loads off net Net behind a new buffer of
	// master To.
	Kind string `json:"op"`
	// Cell names the resize target ("resize").
	Cell string `json:"cell,omitempty"`
	// Net names the buffered net ("buffer").
	Net string `json:"net,omitempty"`
	// Loads names the moved load pins as "cell/pin" ("buffer").
	Loads []string `json:"loads,omitempty"`
	// To is the replacement or buffer master name.
	To string `json:"to"`
}

// ScenarioSlack is one scenario's merged timing numbers.
type ScenarioSlack struct {
	Scenario string   `json:"scenario"`
	SetupWNS units.Ps `json:"setup_wns"`
	SetupTNS units.Ps `json:"setup_tns"`
	HoldWNS  units.Ps `json:"hold_wns"`
	HoldTNS  units.Ps `json:"hold_tns"`
	// SetupViolations/HoldViolations count violating endpoints.
	SetupViolations int `json:"setup_violations"`
	HoldViolations  int `json:"hold_violations"`
}

// SlackReport answers GET /slack.
type SlackReport struct {
	Epoch     int64           `json:"epoch"`
	Scenarios []ScenarioSlack `json:"scenarios"`
}

// EndpointReport is one endpoint check in GET /endpoints.
type EndpointReport struct {
	Endpoint string   `json:"endpoint"`
	Kind     string   `json:"kind"`
	Slack    units.Ps `json:"slack"`
	Arrival  units.Ps `json:"arrival"`
	Required units.Ps `json:"required"`
	CRPR     units.Ps `json:"crpr"`
}

// EndpointsReport answers GET /endpoints.
type EndpointsReport struct {
	Epoch     int64            `json:"epoch"`
	Scenario  string           `json:"scenario"`
	Endpoints []EndpointReport `json:"endpoints"`
}

// PathReport is one worst path in GET /paths, re-timed path-based.
type PathReport struct {
	Endpoint  string   `json:"endpoint"`
	Depth     int      `json:"depth"`
	GBASlack  units.Ps `json:"gba_slack"`
	PBASlack  units.Ps `json:"pba_slack"`
	Pessimism units.Ps `json:"pessimism"`
	CRPR      units.Ps `json:"crpr"`
	Route     string   `json:"route"`
}

// PathsReport answers GET /paths.
type PathsReport struct {
	Epoch    int64        `json:"epoch"`
	Scenario string       `json:"scenario"`
	Paths    []PathReport `json:"paths"`
}

// WhatIfReport answers POST /whatif and POST /eco: merged slack before and
// after the ops. For /whatif the edit is evaluated and rolled back (Epoch
// unchanged); for /eco it is committed (Epoch advances and After describes
// the new baseline).
type WhatIfReport struct {
	Epoch  int64           `json:"epoch"`
	Before []ScenarioSlack `json:"before"`
	After  []ScenarioSlack `json:"after"`
	// Committed is true for /eco responses.
	Committed bool `json:"committed"`
}

// Health answers GET /healthz.
type Health struct {
	Status    string `json:"status"`
	Epoch     int64  `json:"epoch"`
	Scenarios int    `json:"scenarios"`
	Cells     int    `json:"cells"`
	// Role tags the instance's cluster role: "single" (standalone),
	// "worker" (scenario shard behind a coordinator).
	Role string `json:"role,omitempty"`
	// Degraded mirrors Status == "degraded" as a machine-checkable bool.
	Degraded bool `json:"degraded"`
	// UptimeSec is seconds since the server came up.
	UptimeSec float64 `json:"uptime_sec"`
	// Snapshot reports persistence provenance; omitted when the server
	// runs without snapshot support.
	Snapshot *SnapshotHealth `json:"snapshot,omitempty"`
	// Flight-recorder ring occupancy and capacity (requests and commits
	// currently held for /debug post-hoc diagnosis).
	FlightRequests    int `json:"flight_requests"`
	FlightRequestsCap int `json:"flight_requests_cap"`
	FlightCommits     int `json:"flight_commits"`
	FlightCommitsCap  int `json:"flight_commits_cap"`
}

// SnapshotHealth is the snapshot provenance block inside /healthz: where
// the state came from and whether the crash-recovery log is healthy.
type SnapshotHealth struct {
	// Dir is the snapshot directory packs and the epoch log live in.
	Dir string `json:"dir,omitempty"`
	// RestoredFrom is the pack this process booted from ("" = cold boot).
	RestoredFrom string `json:"restored_from,omitempty"`
	// SnapshotEpoch is the epoch the restored pack carried.
	SnapshotEpoch int64 `json:"snapshot_epoch"`
	// LogReplayed counts epoch-log records replayed at boot.
	LogReplayed int `json:"log_replayed"`
	// LogAppended counts commits appended to the log by this process.
	LogAppended int64 `json:"log_appended"`
	// LogError is the last epoch-log append failure ("" = healthy). A
	// non-empty value means commits since then are NOT crash-recoverable.
	LogError string `json:"log_error,omitempty"`
}

// SaveReport answers POST /admin/save.
type SaveReport struct {
	Path  string `json:"path"`
	Epoch int64  `json:"epoch"`
	Bytes int    `json:"bytes"`
}

// TraceReport wraps a query's normal response when ?debug=trace is set:
// the request's own span tree (render, writer pipeline, sta run/update
// waves) inline next to the answer, tagged with the trace ID also echoed
// in X-Trace-Id.
type TraceReport struct {
	TraceID  string          `json:"trace_id"`
	Spans    []obs.SpanNode  `json:"spans"`
	Response json.RawMessage `json:"response"`
}

// DebugRequestsReport answers GET /debug/requests: the flight recorder's
// last requests, newest first. Dropped counts ring writes abandoned under
// extreme contention (normally zero).
type DebugRequestsReport struct {
	Requests []obs.RequestRecord `json:"requests"`
	Dropped  uint64              `json:"dropped"`
}

// DebugEpochsReport answers GET /debug/epochs: the last commits with
// their per-phase durations, newest first.
type DebugEpochsReport struct {
	Commits []obs.CommitRecord `json:"commits"`
	Dropped uint64             `json:"dropped"`
}

// DebugSlowReport answers GET /debug/slow: recorded requests at or above
// the latency threshold.
type DebugSlowReport struct {
	ThresholdMs float64             `json:"threshold_ms"`
	Requests    []obs.RequestRecord `json:"requests"`
}

// TriageReport answers GET /triage: the clustered root-cause report over
// the scenarios this server serves, tagged with the epoch it was rendered
// at. A cluster coordinator answers the same shape, merged from shard
// extracts — byte-identical to a single node serving the full recipe.
type TriageReport struct {
	Epoch int64 `json:"epoch"`
	triage.Report
}

// TriageExtract answers GET /triage/extract?scenario=: one scenario's
// relation-graph contribution, the scatter unit a cluster coordinator
// gathers from the owning shards before merging.
type TriageExtract struct {
	Epoch int64 `json:"epoch"`
	triage.ScenarioExtract
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

// ScenarioRef names one scenario this server serves together with its
// index in the FULL recipe order — the canonical ordering a cluster
// coordinator merges shard answers in. For an unfiltered server the
// indices are simply 0..N-1.
type ScenarioRef struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

// PrepareRequest is phase one of the cluster epoch barrier (POST
// /cluster/prepare): apply and re-time Ops on the shadow, hold the result
// pending the coordinator's decision. BaseEpoch must match the shard's
// current epoch — a stale coordinator gets a clean 409 instead of a
// diverging commit.
type PrepareRequest struct {
	Txn       string `json:"txn"`
	BaseEpoch int64  `json:"base_epoch"`
	Ops       []Op   `json:"ops"`
}

// PrepareResponse acks a prepare: the epoch this shard will move to on
// commit, plus the full before/after report (the coordinator merges the
// shards' reports into the client-facing answer).
type PrepareResponse struct {
	Txn    string        `json:"txn"`
	Epoch  int64         `json:"epoch"`
	Report *WhatIfReport `json:"report"`
}

// TxnRequest drives phase two (POST /cluster/commit or /cluster/abort).
type TxnRequest struct {
	Txn string `json:"txn"`
}

// TxnResponse answers commit/abort: the shard's epoch after the operation
// and whether the named transaction was actually consumed (an abort of an
// already-expired transaction answers Done=false, idempotently).
type TxnResponse struct {
	Txn   string `json:"txn"`
	Epoch int64  `json:"epoch"`
	Done  bool   `json:"done"`
}

// ClusterInfo answers GET /cluster/info: what a coordinator needs to place
// this shard in the ring.
type ClusterInfo struct {
	Role       string        `json:"role"`
	Epoch      int64         `json:"epoch"`
	Degraded   bool          `json:"degraded"`
	Scenarios  []ScenarioRef `json:"scenarios"`
	PendingTxn string        `json:"pending_txn,omitempty"`
}
