package timingd

import "fmt"

// FaultSite names an injection point on the server's write and cache
// paths. The sites are the seams where a resident daemon actually breaks
// in production: resolving and applying an edit batch, the moment before
// the snapshot swap publishes it, the replay that rebuilds the retired
// snapshot, and the query cache on the read path.
type FaultSite string

const (
	// SiteCommitResolve fires at the top of the writer pipeline (commit
	// and what-if), before the op batch is resolved against the shadow.
	SiteCommitResolve FaultSite = "commit.resolve"
	// SiteCommitApply fires after resolution, before edits touch the
	// shadow netlist.
	SiteCommitApply FaultSite = "commit.apply"
	// SiteCommitSwap fires after the shadow is edited and re-timed,
	// immediately before the snapshot swap publishes the new epoch.
	SiteCommitSwap FaultSite = "commit.swap"
	// SiteCommitReplay fires before the committed batch is replayed onto
	// the retired snapshot. The commit is already visible at this point.
	SiteCommitReplay FaultSite = "commit.replay"
	// SiteCacheGet and SiteCachePut fire around the per-epoch query
	// cache. An error here must degrade to a fresh render, never to a
	// wrong or failed response.
	SiteCacheGet FaultSite = "cache.get"
	SiteCachePut FaultSite = "cache.put"
)

// Hooks is the fault-injection seam. Production servers leave Config.Hooks
// nil — every call site goes through Server.fire, which is nil-safe and
// free when unset. A test hook may return an error (the site fails
// cleanly), panic (the site crashes mid-flight), or sleep before returning
// nil (the site is slow). The server's contract under all three is pinned
// by the chaos tests.
type Hooks struct {
	// Fire is invoked with the site about to execute. A nil Fire is the
	// same as no hooks.
	Fire func(site FaultSite) error
}

// fire triggers the hook for a site, if any.
func (s *Server) fire(site FaultSite) error {
	h := s.cfg.Hooks
	if h == nil || h.Fire == nil {
		return nil
	}
	return h.Fire(site)
}

// panicError marks an error that was recovered from a panic, so callers
// can distinguish "the site failed" from "the site crashed" — the latter
// leaves state unknown and must degrade the server.
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("recovered panic: %v", e.val) }

func isRecoveredPanic(err error) bool {
	_, ok := err.(*panicError)
	return ok
}

// guard runs fn, converting a panic into an error so a crash inside the
// writer pipeline cannot take down the daemon or leak a held lock (fn must
// manage its locks with defer).
func guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r}
		}
	}()
	return fn()
}
