package timingd

import (
	"bytes"
	"sync"
	"testing"

	"newgame/internal/circuits"
	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/pack"
	"newgame/internal/parasitics"
)

// The boot benchmark pair measures the same outcome — a server answering
// queries at the snapshot epoch — by the two available roads. Text boot is
// the honest cold path: parse every scenario library and the netlist from
// their text interchange forms, then build the server (tree synthesis plus
// levelization included). Pack restore reads one binary snapshot and
// adopts the frozen topology and saved trees. cmd/benchdiff guards the
// ratio via scripts/bench_snapshot.sh.
//
// The bench design is deliberately modest: boot cost on a small block is
// dominated by the fixed multi-megabyte library payload, which is exactly
// the asymmetry the pack exploits (binary slabs vs float text parsing).
// STA run time is identical on both roads and would only dilute the
// comparison.

var (
	benchOnce   sync.Once
	benchDesign *netlist.Design
)

func benchFixture(b *testing.B) (core.Recipe, *parasitics.Stack, *netlist.Design) {
	recipe, stack, _ := fixture(b)
	benchOnce.Do(func() {
		benchDesign = circuits.Block(recipe.Scenarios[0].Lib, circuits.BlockSpec{
			Name: "boot", Inputs: 6, Outputs: 6, FFs: 8, Gates: 48,
			MaxDepth: 6, Seed: 7, ClockBufferLevels: 1,
			VtMix: [3]float64{0, 0.5, 0.5},
		})
	})
	return recipe, stack, benchDesign
}

func BenchmarkBootTextParse(b *testing.B) {
	recipe, stack, d := benchFixture(b)
	var libTexts []*bytes.Buffer
	libAt := map[*liberty.Library]int{}
	for _, sc := range recipe.Scenarios {
		if _, ok := libAt[sc.Lib]; ok {
			continue
		}
		var buf bytes.Buffer
		if err := liberty.WriteLib(&buf, sc.Lib); err != nil {
			b.Fatal(err)
		}
		libAt[sc.Lib] = len(libTexts)
		libTexts = append(libTexts, &buf)
	}
	var designText bytes.Buffer
	if err := netlist.WriteText(&designText, d); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		libs := make([]*liberty.Library, len(libTexts))
		for j, txt := range libTexts {
			lib, err := liberty.ParseLib(bytes.NewReader(txt.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			libs[j] = lib
		}
		pd, err := netlist.ParseText(bytes.NewReader(designText.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		rec := recipe
		rec.Scenarios = append([]core.Scenario(nil), recipe.Scenarios...)
		for j := range rec.Scenarios {
			rec.Scenarios[j].Lib = libs[libAt[recipe.Scenarios[j].Lib]]
		}
		s, err := NewServer(Config{
			Design: pd, Recipe: rec, Stack: stack,
			BasePeriod: 560, Seed: 7, QueryWorkers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

func BenchmarkBootPackRestore(b *testing.B) {
	dir := b.TempDir()
	recipe, stack, d := benchFixture(b)
	s, err := NewServer(Config{
		Design: d, Recipe: recipe, Stack: stack,
		BasePeriod: 560, Seed: 7, QueryWorkers: 4,
		SnapshotDir: dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := s.save()
	if err != nil {
		b.Fatal(err)
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := pack.Load(rep.Path)
		if err != nil {
			b.Fatal(err)
		}
		s, err := NewServer(Config{QueryWorkers: 4, Restore: snap, RestorePath: rep.Path})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
