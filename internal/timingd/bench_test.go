package timingd

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"newgame/internal/obs"
)

// benchTimingdQueryObs measures the warm cached-slack query with and
// without a metrics recorder attached — the overhead budget for the
// observability layer on the hottest read path. The flight recorder and
// trace-ID minting are always on in both runs (they are unconditional by
// design); the recorder adds the per-route counter, error counter and
// latency histogram per request. The Obs-on/Obs-off pair must stay within
// a few percent of each other.
func benchTimingdQueryObs(b *testing.B, withObs bool) {
	_, hs := newTestServer(b, func(c *Config) {
		c.QueryWorkers = 0
		c.QueueDepth = 1024
		if withObs {
			c.Obs = obs.NewRecorder()
		}
	})
	benchGet(b, hs.URL+"/slack") // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, hs.URL+"/slack")
	}
}

func BenchmarkTimingdQueryObsOff(b *testing.B) { benchTimingdQueryObs(b, false) }
func BenchmarkTimingdQueryObsOn(b *testing.B)  { benchTimingdQueryObs(b, true) }

// benchGet issues one GET and fails the benchmark on a non-200.
func benchGet(b *testing.B, url string) {
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkTimingdQuery measures the daemon's query latency in
// serial/concurrent pairs over the real HTTP stack:
//
//   - slack cached vs cold (cold purges the query cache every iteration,
//     forcing a render from the resident graphs);
//   - paths cold (k-worst + PBA re-time, the heaviest read);
//   - whatif (resize + incremental re-time forward and back, serialized by
//     the writer lock);
//   - slack while a writer goroutine commits ECOs in a loop (reads resolve
//     epoch snapshots and must not stall behind the writer).
//
// The serial/parallel pairs quantify what the epoch-snapshot design buys
// and what commit churn costs: cached reads scale with client count, while
// back-to-back commits purge the cache every iteration, so reads degrade
// to cold renders that sometimes wait behind the retired-snapshot replay —
// but they keep answering; nothing fails or stalls unboundedly.
func BenchmarkTimingdQuery(b *testing.B) {
	s, hs := newTestServer(b, func(c *Config) {
		c.QueryWorkers = 0 // all CPUs
		c.QueueDepth = 1024
	})
	cell, to := resizeTarget(b)
	_, _, d := fixture(b)
	oldType := d.Cell(cell).TypeName
	wifBody := opsJSON(Op{Kind: "resize", Cell: cell, To: to})

	b.Run("slack_cached_serial", func(b *testing.B) {
		benchGet(b, hs.URL+"/slack") // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, hs.URL+"/slack")
		}
	})
	b.Run("slack_cached_parallel", func(b *testing.B) {
		benchGet(b, hs.URL+"/slack")
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchGet(b, hs.URL+"/slack")
			}
		})
	})
	b.Run("slack_cold_serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.cache.purge()
			benchGet(b, hs.URL+"/slack")
		}
	})
	b.Run("paths_cold_serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.cache.purge()
			benchGet(b, hs.URL+"/paths?k=5")
		}
	})
	b.Run("whatif_serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(hs.URL+"/whatif", "application/json", strings.NewReader(wifBody))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.Run("slack_under_commits_parallel", func(b *testing.B) {
		benchGet(b, hs.URL+"/slack")
		stop := make(chan struct{})
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				target := to
				if i%2 == 1 {
					target = oldType
				}
				body := opsJSON(Op{Kind: "resize", Cell: cell, To: target})
				resp, err := http.Post(hs.URL+"/eco", "application/json", strings.NewReader(body))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchGet(b, hs.URL+"/slack")
			}
		})
		b.StopTimer()
		close(stop)
		<-writerDone
		// Leave the server at the original netlist so subsequent
		// sub-benchmark ordering doesn't matter.
		body := opsJSON(Op{Kind: "resize", Cell: cell, To: oldType})
		resp, err := http.Post(hs.URL+"/eco", "application/json", strings.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}
