package timingd

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"newgame/internal/pack"
)

func saveSnapshot(t *testing.T, base string) SaveReport {
	t.Helper()
	code, body := post(t, base, "/admin/save", "")
	if code != 200 {
		t.Fatalf("/admin/save: %d %s", code, body)
	}
	var rep SaveReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func commitResize(t *testing.T, base string) {
	t.Helper()
	cell, to := resizeTarget(t)
	code, body := post(t, base, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != 200 {
		t.Fatalf("/eco: %d %s", code, body)
	}
}

// The headline acceptance test: snapshot at epoch 0, commit an ECO (logged
// at epoch 1), kill the server, boot a new one from the pack. Log replay
// carries it to epoch 1 and every query endpoint answers byte-identically
// to the live server it replaced.
func TestRestoreByteIdenticalAfterLogReplay(t *testing.T) {
	dir := t.TempDir()
	live, hsLive := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	rep := saveSnapshot(t, hsLive.URL)
	if rep.Epoch != 0 || rep.Bytes <= 0 {
		t.Fatalf("save report %+v", rep)
	}
	commitResize(t, hsLive.URL)
	paths := []string{"/slack", "/endpoints", "/paths?k=8"}
	liveBytes := make([][]byte, len(paths))
	for i, p := range paths {
		code, b := get(t, hsLive.URL, p)
		if code != 200 {
			t.Fatalf("live %s: %d %s", p, code, b)
		}
		liveBytes[i] = b
	}
	hsLive.Close()
	live.Close() // kill: the restored server takes over the log

	snap, err := pack.Load(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	restored, hs := newTestServer(t, func(c *Config) {
		*c = Config{QueryWorkers: 4, SnapshotDir: dir, Restore: snap, RestorePath: rep.Path}
	})
	if restored.Epoch() != 1 {
		t.Fatalf("restored epoch %d, want 1 (snapshot 0 + 1 replayed)", restored.Epoch())
	}
	for i, p := range paths {
		code, b := get(t, hs.URL, p)
		if code != 200 {
			t.Fatalf("restored %s: %d %s", p, code, b)
		}
		if !bytes.Equal(b, liveBytes[i]) {
			t.Errorf("%s differs after restore:\n%s\nlive:\n%s", p, b, liveBytes[i])
		}
	}
}

func TestRestoreHealthzProvenance(t *testing.T) {
	dir := t.TempDir()
	live, hsLive := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	rep := saveSnapshot(t, hsLive.URL)
	commitResize(t, hsLive.URL)
	hsLive.Close()
	live.Close()

	snap, err := pack.Load(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, func(c *Config) {
		*c = Config{QueryWorkers: 4, SnapshotDir: dir, Restore: snap, RestorePath: rep.Path}
	})
	commitResize(t, hs.URL) // epoch 2, appended by this process
	code, body := get(t, hs.URL, "/healthz")
	if code != 200 {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Snapshot == nil {
		t.Fatal("healthz has no snapshot block")
	}
	sn := h.Snapshot
	if sn.Dir != dir || sn.RestoredFrom != rep.Path || sn.SnapshotEpoch != 0 ||
		sn.LogReplayed != 1 || sn.LogAppended != 1 || sn.LogError != "" {
		t.Fatalf("snapshot provenance %+v", sn)
	}
}

// Crash recovery without a snapshot: the log alone replays onto the
// deterministically regenerated epoch-0 state.
func TestLogOnlyCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	live, hsLive := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	commitResize(t, hsLive.URL)
	code, want := get(t, hsLive.URL, "/slack")
	if code != 200 {
		t.Fatalf("/slack: %d", code)
	}
	hsLive.Close()
	live.Close()

	reborn, hs := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	if reborn.Epoch() != 1 {
		t.Fatalf("recovered epoch %d, want 1", reborn.Epoch())
	}
	code, got := get(t, hs.URL, "/slack")
	if code != 200 {
		t.Fatalf("/slack: %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered slack differs:\n%s\nwant:\n%s", got, want)
	}
}

// A torn final log frame (crash mid-append) is dropped: boot succeeds at
// the intact prefix and the log is rewritten clean.
func TestTornLogTailRecovery(t *testing.T) {
	dir := t.TempDir()
	live, hsLive := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	commitResize(t, hsLive.URL)
	hsLive.Close()
	live.Close()

	logPath := filepath.Join(dir, LogName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	reborn, _ := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	if reborn.Epoch() != 0 {
		t.Fatalf("epoch %d after torn-tail boot, want 0", reborn.Epoch())
	}
	recs, truncated, err := pack.ReadLog(logPath)
	if err != nil || truncated || len(recs) != 0 {
		t.Fatalf("log not rewritten clean: recs=%d truncated=%v err=%v", len(recs), truncated, err)
	}
}

// Rewind: restore stops replay at -rewind-epoch and truncates the log
// there, so history after the chosen point is gone for good.
func TestRestoreRewindToEpoch(t *testing.T) {
	dir := t.TempDir()
	live, hsLive := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	rep := saveSnapshot(t, hsLive.URL)
	commitResize(t, hsLive.URL) // epoch 1
	net, loads := bufferTarget(t)
	code, body := post(t, hsLive.URL, "/eco",
		opsJSON(Op{Kind: "buffer", Net: net, Loads: loads, To: "BUF_X2_SVT"}))
	if code != 200 {
		t.Fatalf("/eco buffer: %d %s", code, body)
	}
	hsLive.Close()
	live.Close()

	snap, err := pack.Load(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	rewound, _ := newTestServer(t, func(c *Config) {
		*c = Config{QueryWorkers: 4, SnapshotDir: dir, Restore: snap,
			RestorePath: rep.Path, RestoreToEpoch: 1}
	})
	if rewound.Epoch() != 1 {
		t.Fatalf("rewound epoch %d, want 1", rewound.Epoch())
	}
	recs, _, err := pack.ReadLog(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 1 {
		t.Fatalf("log after rewind: %+v, want exactly epoch 1", recs)
	}
}

// A log whose next record skips an epoch belongs to a different timeline:
// boot must fail, not serve silently wrong state.
func TestLogEpochGapFailsBoot(t *testing.T) {
	dir := t.TempDir()
	l, err := pack.OpenLog(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	cell, to := resizeTarget(t)
	if err := l.Append(pack.EpochRecord{Epoch: 5,
		Ops: []pack.EpochOp{{Kind: "resize", Cell: cell, To: to}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	cfg := testConfig(t)
	cfg.SnapshotDir = dir
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("boot succeeded over an epoch-gapped log")
	}
}

func TestSaveWithoutSnapshotDir(t *testing.T) {
	_, hs := newTestServer(t, nil)
	code, body := post(t, hs.URL, "/admin/save", "")
	if code != 400 {
		t.Fatalf("/admin/save without dir: %d %s", code, body)
	}
}
