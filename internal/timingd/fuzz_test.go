package timingd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The fuzz server is shared across iterations — building the MCMM session
// dominates setup, and the HTTP surface is what's under test, not epoch
// history. /eco commits do mutate it, which is deliberate: interleaving
// writes with arbitrary reads is exactly the traffic a resident daemon
// sees.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

func fuzzServer(t testing.TB) *Server {
	t.Helper()
	fuzzSrvOnce.Do(func() {
		cfg := testConfig(t)
		cfg.RequestTimeout = 5 * time.Second
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatalf("fuzz server: %v", err)
		}
		fuzzSrv = s // intentionally never closed: lives for the process
	})
	return fuzzSrv
}

// FuzzHandlers throws arbitrary HTTP traffic at the timingd mux. The raw
// fuzz input encodes one request as three newline-separated sections:
// method, request target, body. The contract: no input may panic a
// handler, every response carries a real HTTP status, and anything
// labelled application/json must actually be JSON — malformed op scripts,
// out-of-range ids and limits, and garbage targets all answer with a
// structured 4xx, never a crash or an empty 200.
func FuzzHandlers(f *testing.F) {
	dir := filepath.Join("testdata", "corpus", "handlers")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		parts := strings.SplitN(string(raw), "\n", 3)
		if len(parts) < 2 {
			return
		}
		method, target := parts[0], parts[1]
		var body string
		if len(parts) == 3 {
			body = parts[2]
		}
		if !strings.HasPrefix(target, "/") {
			target = "/" + target
		}
		req, err := http.NewRequest(method, "http://fuzz.local"+target, strings.NewReader(body))
		if err != nil {
			return // unrepresentable as HTTP; nothing to serve
		}
		s := fuzzServer(t)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		res := rec.Result()
		if res.StatusCode < 200 || res.StatusCode > 599 {
			t.Fatalf("%s %s: impossible status %d", method, target, res.StatusCode)
		}
		if ct := res.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
			if !json.Valid(bytes.TrimSpace(rec.Body.Bytes())) {
				t.Fatalf("%s %s: %d with Content-Type json but invalid body: %q",
					method, target, res.StatusCode, clipBody(rec.Body.String()))
			}
		}
	})
}

func clipBody(s string) string {
	if len(s) > 500 {
		return s[:500] + "…"
	}
	return s
}
