package timingd

import (
	"context"
	"fmt"

	"newgame/internal/core"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
	"newgame/internal/units"
	"newgame/internal/workpool"
	"sync"
)

// view is one scenario's resident analysis: its constraints and a levelized
// analyzer that has run and stays warm for incremental re-timing.
type view struct {
	scenario core.Scenario
	cons     *sta.Constraints
	a        *sta.Analyzer
}

// session is one epoch snapshot: a private clone of the design plus one
// view per scenario, all timed. The server keeps exactly two — the current
// snapshot readers resolve through an atomic pointer, and the shadow the
// writer edits — and flips their roles on every commit. Because both are
// built from clones of one netlist with name-keyed parasitics binders
// (sta.NewKeyedNetBinder), they stay bit-identical no matter how different
// their edit/re-time histories are.
//
// mu orders readers against the post-swap replay: queries hold RLock while
// rendering, the writer holds Lock while editing. A reader that loaded the
// pointer just before a swap and acquired RLock just after the replay sees
// a fully consistent newer snapshot — tagged with the newer epoch it
// actually read.
type session struct {
	mu    sync.RWMutex
	epoch int64
	d     *netlist.Design
	// clockPort roots the clock in this clone.
	clockPort *netlist.Port
	binder    func(*netlist.Net) *parasitics.Tree
	views     []*view
}

// newSession clones the design and brings up one analyzer per scenario,
// fanning the initial full runs out over the configured workers. All views
// share one frozen sta.Topology: the first view builds (or adopts) it, the
// rest reuse it read-only — per-scenario graph construction drops to the
// compatibility validation. A topo from another session over a Clone of the
// same design (the server passes the front session's to the back) is equally
// shareable, since vertex numbering is a pure function of design order.
func newSession(cfg *Config, src *netlist.Design, topo *sta.Topology) (*session, error) {
	d := src.Clone()
	ck := d.Port(cfg.ClockPort)
	if ck == nil {
		return nil, fmt.Errorf("timingd: design has no clock port %q", cfg.ClockPort)
	}
	s := &session{
		d:         d,
		clockPort: ck,
		binder:    cfg.newBinder(),
		views:     make([]*view, len(cfg.Recipe.Scenarios)),
	}
	if len(cfg.Recipe.Scenarios) == 0 {
		return s, nil
	}
	v0, err := s.buildView(cfg, cfg.Recipe.Scenarios[0], topo)
	if err != nil {
		return nil, err
	}
	s.views[0] = v0
	shared := v0.a.Topology()
	errs := make([]error, len(cfg.Recipe.Scenarios))
	workpool.Do(cfg.Workers, len(cfg.Recipe.Scenarios)-1, func(i int) {
		s.views[i+1], errs[i+1] = s.buildView(cfg, cfg.Recipe.Scenarios[i+1], shared)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// topology returns the session's shared frozen graph (nil when the session
// has no views), for seeding another session over a clone of the same
// design.
func (s *session) topology() *sta.Topology {
	if len(s.views) == 0 {
		return nil
	}
	return s.views[0].a.Topology()
}

// buildView constructs and runs one scenario's analyzer against the
// session's design clone, adopting topo when compatible.
func (s *session) buildView(cfg *Config, sc core.Scenario, topo *sta.Topology) (*view, error) {
	cons := core.ConstraintsFor(s.d, s.clockPort, cfg.BasePeriod, cfg.InputArrival, sc)
	a, err := sta.New(s.d, cons, sta.Config{
		Lib: sc.Lib, Parasitics: s.binder, Scaling: sc.Scaling,
		Derate: sc.Derate, SI: sc.SI, MIS: sc.MIS,
		Workers: cfg.AnalysisWorkers, Obs: cfg.Obs,
		Topology: topo,
	})
	if err != nil {
		return nil, err
	}
	if err := a.Run(); err != nil {
		return nil, err
	}
	return &view{scenario: sc, cons: cons, a: a}, nil
}

// rebuildViews replaces every analyzer after a structural netlist edit
// (vertex sets are fixed at sta.New, so buffer insertion needs fresh
// graphs). Constraints are rebuilt too: the edit may have changed port
// fanout. The first rebuilt view freezes the post-edit topology; the rest
// share it. Cancellation via ctx aborts with the views unchanged.
func (s *session) rebuildViews(ctx context.Context, cfg *Config) error {
	if len(s.views) == 0 {
		return nil
	}
	views := make([]*view, len(s.views))
	errs := make([]error, len(s.views))
	rebuild := func(i int, topo *sta.Topology) {
		sc := s.views[i].scenario
		cons := core.ConstraintsFor(s.d, s.clockPort, cfg.BasePeriod, cfg.InputArrival, sc)
		a, err := sta.New(s.d, cons, sta.Config{
			Lib: sc.Lib, Parasitics: s.binder, Scaling: sc.Scaling,
			Derate: sc.Derate, SI: sc.SI, MIS: sc.MIS,
			Workers: cfg.AnalysisWorkers, Obs: cfg.Obs,
			Topology: topo,
		})
		if err == nil {
			err = a.RunCtx(ctx)
		}
		views[i], errs[i] = &view{scenario: sc, cons: cons, a: a}, err
	}
	rebuild(0, nil)
	if errs[0] != nil {
		return errs[0]
	}
	shared := views[0].a.Topology()
	workpool.Do(cfg.Workers, len(s.views)-1, func(i int) {
		rebuild(i+1, shared)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.views = views
	return nil
}

// slacks renders the merged per-scenario timing summary. Each kind's
// endpoint list is rendered once per view and every summary metric (WNS,
// TNS, violation count) derives from it — rendering is the cold-query
// cost, so it isn't paid three times per number.
func (s *session) slacks() []ScenarioSlack {
	out := make([]ScenarioSlack, len(s.views))
	for i, v := range s.views {
		r := ScenarioSlack{Scenario: v.scenario.Name}
		setup := v.a.EndpointSlacks(sta.Setup)
		hold := v.a.EndpointSlacks(sta.Hold)
		r.SetupWNS = sta.WorstSlackOf(setup)
		r.SetupTNS = sta.TNSOf(setup)
		r.HoldWNS = sta.WorstSlackOf(hold)
		r.HoldTNS = sta.TNSOf(hold)
		for _, e := range setup {
			if e.Slack < 0 {
				r.SetupViolations++
			}
		}
		for _, e := range hold {
			if e.Slack < 0 {
				r.HoldViolations++
			}
		}
		out[i] = r
	}
	return out
}

// findView resolves a scenario by name; an empty name selects the first
// scenario (the setup view in the default recipe).
func (s *session) findView(name string) (*view, error) {
	if name == "" {
		return s.views[0], nil
	}
	for _, v := range s.views {
		if v.scenario.Name == name {
			return v, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q", name)
}

// endpoints renders the k worst endpoint checks of one kind in one
// scenario.
func (v *view) endpoints(kind sta.CheckKind, limit int) []EndpointReport {
	es := v.a.EndpointSlacks(kind)
	if limit > 0 && len(es) > limit {
		es = es[:limit]
	}
	out := make([]EndpointReport, len(es))
	for i, e := range es {
		out[i] = EndpointReport{
			Endpoint: e.Name(), Kind: kind.String(),
			Slack: e.Slack, Arrival: e.Arrival, Required: e.Required, CRPR: e.CRPR,
		}
	}
	return out
}

// paths renders the k worst setup paths re-timed path-based, with the CRPR
// credit each endpoint check carried.
func (v *view) paths(kind sta.CheckKind, k int) []PathReport {
	ps := v.a.WorstPaths(kind, k)
	out := make([]PathReport, len(ps))
	for i, p := range ps {
		r := v.a.PBA(p)
		out[i] = PathReport{
			Endpoint:  p.Endpoint.Name(),
			Depth:     p.Depth(),
			GBASlack:  p.GBASlack,
			PBASlack:  r.Slack,
			Pessimism: r.Pessimism,
			CRPR:      p.Endpoint.CRPR,
			Route:     p.String(),
		}
	}
	return out
}

// wnsOf is a tiny helper for loadgen assertions.
func wnsOf(rs []ScenarioSlack) units.Ps {
	w := units.Ps(0)
	for _, r := range rs {
		if r.SetupWNS < w {
			w = r.SetupWNS
		}
	}
	return w
}
