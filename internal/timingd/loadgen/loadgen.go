// Package loadgen drives a timingd instance with a paced, mixed query
// workload and reports throughput and latency percentiles — the harness
// behind `timingd -loadgen` and the CI smoke step. It lives outside the
// server package so it can use the real client (which imports the wire
// types from the server package).
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"newgame/internal/obs"
	"newgame/internal/timingd"
	"newgame/internal/timingd/client"
)

// Config shapes one load run.
type Config struct {
	// Base is the target server root URL.
	Base string
	// Clients is the number of concurrent client goroutines (default 4).
	Clients int
	// Duration bounds the run (default 3s).
	Duration time.Duration
	// TargetQPS paces the aggregate request rate; 0 runs unpaced (as fast
	// as the server admits).
	TargetQPS int
	// SlackWeight/PathsWeight/WhatIfWeight set the request mix by integer
	// weights (default 8/1/1). What-if requests exercise the write path
	// without advancing the epoch.
	SlackWeight, PathsWeight, WhatIfWeight int
	// WhatIfOps is the op batch what-if requests send; required when
	// WhatIfWeight > 0.
	WhatIfOps []timingd.Op
	// Retry overrides the per-client backoff-retry policy for 429
	// refusals. Nil uses a small default budget (3 attempts within
	// ~250ms), so Refused counts only refusals that outlasted fast
	// retries — sustained saturation, not scheduling blips.
	Retry *client.RetryPolicy
	// Obs, when non-nil, records per-route latency histograms.
	Obs *obs.Recorder
}

// RouteStats aggregates one route's outcomes.
type RouteStats struct {
	Requests  int
	Errors    int
	Refused   int // 429 backpressure answers
	latencies []time.Duration
}

// Percentile returns the p-quantile latency (0 < p <= 1) of the
// successful requests.
func (r *RouteStats) Percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(p*float64(len(r.latencies))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.latencies) {
		i = len(r.latencies) - 1
	}
	return r.latencies[i]
}

// Report is the outcome of one load run.
type Report struct {
	Elapsed time.Duration
	Total   int
	QPS     float64
	Routes  map[string]*RouteStats
}

// String renders the operator-facing summary table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests in %.2fs = %.0f qps\n", r.Total, r.Elapsed.Seconds(), r.QPS)
	routes := make([]string, 0, len(r.Routes))
	for name := range r.Routes {
		routes = append(routes, name)
	}
	sort.Strings(routes)
	for _, name := range routes {
		st := r.Routes[name]
		fmt.Fprintf(&b, "  %-8s %7d ok, %d err, %d refused | p50 %s p95 %s p99 %s\n",
			name, st.Requests, st.Errors, st.Refused,
			st.Percentile(0.50).Round(time.Microsecond),
			st.Percentile(0.95).Round(time.Microsecond),
			st.Percentile(0.99).Round(time.Microsecond))
	}
	return b.String()
}

// RouteJSON is one route's outcome in the machine-readable report.
type RouteJSON struct {
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Refused  int `json:"refused"`
	// MixPct is this route's share of all issued requests, percent.
	MixPct float64 `json:"mix_pct"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// ReportJSON is the machine-readable run summary (`timingd -loadgen
// -json`), archived by CI next to the benchmark snapshots so throughput
// and tail-latency history lives beside ns/op history.
type ReportJSON struct {
	ElapsedSec    float64              `json:"elapsed_sec"`
	TotalRequests int                  `json:"total_requests"`
	QPS           float64              `json:"qps"`
	Routes        map[string]RouteJSON `json:"routes"`
}

// JSON converts the report for machine consumption.
func (r Report) JSON() ReportJSON {
	out := ReportJSON{
		ElapsedSec:    r.Elapsed.Seconds(),
		TotalRequests: r.Total,
		QPS:           r.QPS,
		Routes:        make(map[string]RouteJSON, len(r.Routes)),
	}
	issued := 0
	for _, st := range r.Routes {
		issued += st.Requests + st.Errors + st.Refused
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	for name, st := range r.Routes {
		rj := RouteJSON{
			Requests: st.Requests, Errors: st.Errors, Refused: st.Refused,
			P50Ms: ms(st.Percentile(0.50)),
			P95Ms: ms(st.Percentile(0.95)),
			P99Ms: ms(st.Percentile(0.99)),
		}
		if issued > 0 {
			rj.MixPct = 100 * float64(st.Requests+st.Errors+st.Refused) / float64(issued)
		}
		out.Routes[name] = rj
	}
	return out
}

// Run executes the load profile and aggregates the outcome. Every client
// goroutine draws from one shared request sequence, so the mix is exact
// regardless of client count.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.SlackWeight == 0 && cfg.PathsWeight == 0 && cfg.WhatIfWeight == 0 {
		cfg.SlackWeight, cfg.PathsWeight, cfg.WhatIfWeight = 8, 1, 1
	}
	if cfg.WhatIfWeight > 0 && len(cfg.WhatIfOps) == 0 {
		return Report{}, fmt.Errorf("loadgen: WhatIfWeight set but no WhatIfOps")
	}
	mix := buildMix(cfg)

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Pacing: one shared ticket channel; paced mode feeds it at TargetQPS,
	// unpaced mode keeps it saturated.
	tickets := make(chan struct{}, cfg.Clients)
	go func() {
		defer close(tickets)
		if cfg.TargetQPS <= 0 {
			for ctx.Err() == nil {
				select {
				case tickets <- struct{}{}:
				case <-ctx.Done():
					return
				}
			}
			return
		}
		interval := time.Second / time.Duration(cfg.TargetQPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		tk := time.NewTicker(interval)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				select {
				case tickets <- struct{}{}:
				default: // clients saturated; shed the tick
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	var mu sync.Mutex
	routes := map[string]*RouteStats{}
	var seq int64
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < cfg.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := client.New(cfg.Base)
			if cfg.Retry != nil {
				cl.Retry = *cfg.Retry
			} else {
				// Fast-retryable refusals are part of normal admission
				// behavior under load; only budget-exhausted ones count.
				cl.Retry = client.RetryPolicy{
					MaxAttempts: 3, BaseDelay: 2 * time.Millisecond,
					MaxDelay: 50 * time.Millisecond, MaxElapsed: 250 * time.Millisecond,
					Seed: uint64(g + 1),
				}
			}
			for range tickets {
				mu.Lock()
				route := mix[seq%int64(len(mix))]
				seq++
				mu.Unlock()
				t0 := time.Now()
				var err error
				switch route {
				case "slack":
					_, err = cl.Slack(ctx)
				case "paths":
					_, err = cl.Paths(ctx, "", "setup", 3)
				case "whatif":
					_, err = cl.WhatIf(ctx, cfg.WhatIfOps)
				}
				lat := time.Since(t0)
				if ctx.Err() != nil && err != nil {
					break // shutdown race, not a server failure
				}
				mu.Lock()
				st := routes[route]
				if st == nil {
					st = &RouteStats{}
					routes[route] = st
				}
				switch {
				case err == nil:
					st.Requests++
					st.latencies = append(st.latencies, lat)
				case client.IsBackpressure(err):
					st.Refused++
				default:
					st.Errors++
				}
				mu.Unlock()
				if cfg.Obs != nil {
					cfg.Obs.Histogram("loadgen."+route+".latency_ms",
						0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100).
						Observe(float64(lat.Microseconds()) / 1000)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{Elapsed: elapsed, Routes: routes}
	for _, st := range routes {
		rep.Total += st.Requests
		sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.QPS = float64(rep.Total) / s
	}
	return rep, nil
}

// buildMix expands the weights into a repeating request schedule.
func buildMix(cfg Config) []string {
	var mix []string
	for i := 0; i < cfg.SlackWeight; i++ {
		mix = append(mix, "slack")
	}
	for i := 0; i < cfg.PathsWeight; i++ {
		mix = append(mix, "paths")
	}
	for i := 0; i < cfg.WhatIfWeight; i++ {
		mix = append(mix, "whatif")
	}
	if len(mix) == 0 {
		mix = []string{"slack"}
	}
	return mix
}
