package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"newgame/internal/timingd"
	"newgame/internal/timingd/client"
)

func TestPercentile(t *testing.T) {
	var empty RouteStats
	if got := empty.Percentile(0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	st := &RouteStats{}
	for i := 1; i <= 100; i++ {
		st.latencies = append(st.latencies, time.Duration(i)*time.Millisecond)
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
		{0.001, time.Millisecond}, // clamps to the fastest sample
	} {
		if got := st.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	one := &RouteStats{latencies: []time.Duration{7 * time.Millisecond}}
	if got := one.Percentile(0.99); got != 7*time.Millisecond {
		t.Errorf("single-sample Percentile = %v, want 7ms", got)
	}
}

func TestBuildMix(t *testing.T) {
	mix := buildMix(Config{SlackWeight: 2, PathsWeight: 1, WhatIfWeight: 1})
	want := []string{"slack", "slack", "paths", "whatif"}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	if mix := buildMix(Config{}); !reflect.DeepEqual(mix, []string{"slack"}) {
		t.Fatalf("zero-weight mix = %v, want [slack]", mix)
	}
}

// stubTimingd is a wire-compatible stand-in: it answers each route with a
// canned report and counts requests, optionally refusing some with 429 —
// the accounting under test, without paying for a real MCMM session.
type stubTimingd struct {
	slack, paths, whatif atomic.Int64
	refuseEvery          int64 // every Nth /slack answers 429 (0 = never)
}

func (s *stubTimingd) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/slack", func(w http.ResponseWriter, r *http.Request) {
		n := s.slack.Add(1)
		if s.refuseEvery > 0 && n%s.refuseEvery == 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "request queue full"})
			return
		}
		json.NewEncoder(w).Encode(timingd.SlackReport{Epoch: 1})
	})
	mux.HandleFunc("/paths", func(w http.ResponseWriter, r *http.Request) {
		s.paths.Add(1)
		json.NewEncoder(w).Encode(timingd.PathsReport{Epoch: 1})
	})
	mux.HandleFunc("/whatif", func(w http.ResponseWriter, r *http.Request) {
		s.whatif.Add(1)
		json.NewEncoder(w).Encode(timingd.WhatIfReport{Epoch: 1})
	})
	return mux
}

func TestRunMixAndAccounting(t *testing.T) {
	stub := &stubTimingd{refuseEvery: 5}
	hs := httptest.NewServer(stub.handler())
	defer hs.Close()

	rep, err := Run(context.Background(), Config{
		Base:        hs.URL,
		Clients:     3,
		Duration:    300 * time.Millisecond,
		SlackWeight: 3, PathsWeight: 1, WhatIfWeight: 1,
		WhatIfOps: []timingd.Op{{Kind: "resize", Cell: "u1", To: "INV_X2_SVT"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || rep.QPS <= 0 {
		t.Fatalf("no throughput recorded: %+v", rep)
	}
	sl, pa := rep.Routes["slack"], rep.Routes["paths"]
	if sl == nil || pa == nil || rep.Routes["whatif"] == nil {
		t.Fatalf("missing route stats: %v", rep.Routes)
	}
	// The shared sequence makes the issued mix exact; successes per route
	// only drift by the injected refusals.
	if issued := sl.Requests + sl.Refused; issued < 2*pa.Requests {
		t.Errorf("mix skew: slack issued %d vs paths %d (want ~3:1)", issued, pa.Requests)
	}
	// An intermittent every-5th 429 is exactly what the default retry
	// budget exists for: the raw 20% refusal rate must collapse to the
	// residue of requests unlucky enough to draw 429 on all three
	// attempts (~0.8% expected; 5% is the flake-proof ceiling).
	issued := sl.Requests + sl.Refused
	if sl.Refused*20 > issued {
		t.Errorf("retries did not absorb refusals: %d of %d issued", sl.Refused, issued)
	}
	if sl.Errors != 0 || pa.Errors != 0 {
		t.Errorf("unexpected errors: slack %d paths %d", sl.Errors, pa.Errors)
	}
	// Retries mean the stub sees at least as many hits as the client
	// records outcomes — never fewer (minus the per-client in-flight
	// request dropped at the deadline).
	got := int64(sl.Requests + sl.Refused)
	if served := stub.slack.Load(); got > served {
		t.Errorf("slack accounting: client recorded %d, stub served %d", got, served)
	}
	if !strings.Contains(rep.String(), "refused | p50") {
		t.Errorf("report table malformed:\n%s", rep.String())
	}
}

// TestRunRefusalsWithoutRetry: with retries disabled the injected 429s
// surface as Refused — the pre-retry accounting, still available for
// probing raw admission behavior.
func TestRunRefusalsWithoutRetry(t *testing.T) {
	stub := &stubTimingd{refuseEvery: 5}
	hs := httptest.NewServer(stub.handler())
	defer hs.Close()

	rep, err := Run(context.Background(), Config{
		Base:        hs.URL,
		Clients:     3,
		Duration:    300 * time.Millisecond,
		SlackWeight: 1,
		Retry:       &client.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sl := rep.Routes["slack"]
	if sl == nil || sl.Refused == 0 {
		t.Fatalf("refusals not surfaced without retry: %+v", sl)
	}
	if sl.Errors != 0 {
		t.Fatalf("refusals misclassified as errors: %d", sl.Errors)
	}
	got := int64(sl.Requests + sl.Refused)
	if served := stub.slack.Load(); got > served || served-got > 3 {
		t.Fatalf("slack accounting: client recorded %d, stub served %d", got, served)
	}
}

func TestRunPacedRate(t *testing.T) {
	stub := &stubTimingd{}
	hs := httptest.NewServer(stub.handler())
	defer hs.Close()

	const qps, dur = 40, 500 * time.Millisecond
	rep, err := Run(context.Background(), Config{
		Base: hs.URL, Clients: 2, Duration: dur,
		TargetQPS: qps, SlackWeight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pacing is a ceiling, not a floor: the ticker can't issue more than
	// qps*dur tickets (plus the channel's small buffer), and on an
	// unloaded stub it should get most of them through.
	maxIssued := int(float64(qps)*dur.Seconds()) + 2 // + channel buffer slop
	if rep.Total > maxIssued {
		t.Fatalf("paced run sent %d requests, ceiling %d", rep.Total, maxIssued)
	}
	if rep.Total < maxIssued/4 {
		t.Fatalf("paced run sent only %d of ~%d requests", rep.Total, maxIssued)
	}
}

// The JSON view carries qps, per-route percentiles in milliseconds and a
// mix that sums to 100%, and round-trips through encoding/json.
func TestReportJSON(t *testing.T) {
	rep := Report{
		Elapsed: 2 * time.Second,
		Total:   300,
		QPS:     150,
		Routes: map[string]*RouteStats{
			"slack": {Requests: 240, Refused: 10, latencies: mkLatencies(240)},
			"paths": {Requests: 50, Errors: 0, latencies: mkLatencies(50)},
		},
	}
	j := rep.JSON()
	if j.QPS != 150 || j.TotalRequests != 300 || j.ElapsedSec != 2 {
		t.Fatalf("header fields: %+v", j)
	}
	sl := j.Routes["slack"]
	if sl.Requests != 240 || sl.Refused != 10 {
		t.Fatalf("slack counts: %+v", sl)
	}
	// mkLatencies yields 1ms..Nms ascending, so p50 of 240 samples is 120ms.
	if sl.P50Ms != 120 || sl.P99Ms != 237 {
		t.Fatalf("slack percentiles: p50=%v p99=%v", sl.P50Ms, sl.P99Ms)
	}
	if total := sl.MixPct + j.Routes["paths"].MixPct; total < 99.99 || total > 100.01 {
		t.Fatalf("mix does not sum to 100%%: %v", total)
	}
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back ReportJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, back) {
		t.Fatalf("JSON round trip changed the report:\n%+v\n%+v", j, back)
	}
	for _, key := range []string{`"qps"`, `"p95_ms"`, `"mix_pct"`, `"total_requests"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("marshaled report missing %s: %s", key, b)
		}
	}
}

func mkLatencies(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Millisecond
	}
	return out
}

func TestRunWhatIfRequiresOps(t *testing.T) {
	_, err := Run(context.Background(), Config{Base: "http://unused", WhatIfWeight: 1})
	if err == nil || !strings.Contains(err.Error(), "WhatIfOps") {
		t.Fatalf("want WhatIfOps error, got %v", err)
	}
}
