package timingd

import (
	"container/list"
	"sync"
)

// queryCache is a small LRU over rendered response bodies, keyed by
// (epoch, canonical request URI). Epoch is part of the key *and* the whole
// cache is purged on commit: the purge bounds memory to live entries, the
// epoch key makes a stale hit impossible even in the window between a swap
// and the purge.
type queryCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	epoch int64
	uri   string
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

func newQueryCache(max int) *queryCache {
	if max < 1 {
		max = 1
	}
	return &queryCache{max: max, order: list.New(), byKey: map[cacheKey]*list.Element{}}
}

// get returns the cached body for (epoch, uri), bumping recency.
func (c *queryCache) get(epoch int64, uri string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[cacheKey{epoch, uri}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores a rendered body, evicting the least-recently-used entry past
// capacity.
func (c *queryCache) put(epoch int64, uri string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{epoch, uri}
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, body: body})
	c.byKey[key] = el
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// purge drops every entry — called on ECO commit, when the previous
// epoch's answers stop being current. Returns the number of entries
// dropped (the commit audit record's cache_purged field).
func (c *queryCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.order.Len()
	c.order.Init()
	clear(c.byKey)
	return n
}

// stats reports cumulative hit/miss counts.
func (c *queryCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
