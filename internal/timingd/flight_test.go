package timingd

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"newgame/internal/obs"
)

// findSpan walks a span forest depth-first for a span named name.
func findSpan(nodes []obs.SpanNode, name string) *obs.SpanNode {
	for i := range nodes {
		if nodes[i].Name == name {
			return &nodes[i]
		}
		if n := findSpan(nodes[i].Children, name); n != nil {
			return n
		}
	}
	return nil
}

// Every response carries an X-Trace-Id: minted when the client sends none,
// echoed verbatim when it does, and the plain (untraced) body stays the
// ordinary report — no trace envelope.
func TestTraceIDEchoedOnEveryResponse(t *testing.T) {
	_, hs := newTestServer(t, nil)

	resp, err := http.Get(hs.URL + "/slack")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Trace-Id")
	if minted == "" {
		t.Fatal("no X-Trace-Id minted on a plain request")
	}

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/slack", nil)
	req.Header.Set("X-Trace-Id", "deadbeefcafe0001")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "deadbeefcafe0001" {
		t.Fatalf("client trace ID not echoed: got %q", got)
	}
	var rep SlackReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("untraced body is not the plain report: %+v", rep)
	}
}

// ?debug=trace wraps the answer in a TraceReport: the trace ID matches the
// response header, the span tree is rooted at the route span with the
// render (and, through the context, sta) spans nested inside, and the
// original response rides along unchanged.
func TestDebugTraceReturnsSpanTree(t *testing.T) {
	_, hs := newTestServer(t, nil)
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/slack?debug=trace", nil)
	req.Header.Set("X-Trace-Id", "feedface00000042")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("traced request answered %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "feedface00000042" {
		t.Fatalf("traced request header = %q", got)
	}
	var tr TraceReport
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "feedface00000042" {
		t.Fatalf("body trace_id %q disagrees with header", tr.TraceID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "timingd.slack" {
		t.Fatalf("span forest not rooted at the route span: %+v", tr.Spans)
	}
	render := findSpan(tr.Spans, "render")
	if render == nil {
		t.Fatal("cold traced query has no render span")
	}
	if render.DurUs <= 0 {
		t.Fatalf("render span has no duration: %+v", render)
	}
	var rep SlackReport
	if err := json.Unmarshal(tr.Response, &rep); err != nil {
		t.Fatalf("inline response does not parse: %v", err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("inline response shape: %+v", rep)
	}

	// A second traced request hits the query cache: the envelope is fresh
	// (this request's spans), so there is no render child — the trace
	// truthfully shows the request did no rendering work.
	code, b := get(t, hs.URL, "/slack?debug=trace")
	if code != 200 {
		t.Fatalf("second traced request answered %d", code)
	}
	var tr2 TraceReport
	if err := json.Unmarshal(b, &tr2); err != nil {
		t.Fatal(err)
	}
	if findSpan(tr2.Spans, "render") != nil {
		t.Fatal("cache-hit trace claims a render span")
	}
	if tr2.TraceID == tr.TraceID {
		t.Fatal("second request reused the first trace ID")
	}
}

// A traced ECO's span tree reaches through the writer into the sta layer:
// the commit span carries the context-propagated sta.update (or sta.run)
// spans recorded during re-timing.
func TestTracedECOCarriesSTASpans(t *testing.T) {
	_, hs := newTestServer(t, nil)
	cell, to := resizeTarget(t)
	code, b := post(t, hs.URL, "/eco?debug=trace", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != 200 {
		t.Fatalf("traced eco answered %d: %s", code, b)
	}
	var tr TraceReport
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	commit := findSpan(tr.Spans, "commit")
	if commit == nil {
		t.Fatalf("traced eco has no commit span: %+v", tr.Spans)
	}
	sta := findSpan(tr.Spans, "sta.update")
	if sta == nil {
		sta = findSpan(tr.Spans, "sta.run")
	}
	if sta == nil {
		t.Fatal("traced eco recorded no sta-level span — context not threaded through retime")
	}
	if _, ok := sta.Args["nodes_relaxed"]; !ok {
		t.Fatalf("sta span missing run stats args: %+v", sta.Args)
	}
	var rep WhatIfReport
	if err := json.Unmarshal(tr.Response, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Committed || rep.Epoch != 1 {
		t.Fatalf("traced eco inline response: %+v", rep)
	}
}

// The flight recorder captures every request: /debug/requests returns the
// recent ones newest-first with route, trace ID, epoch, cache outcome,
// status and latency filled in.
func TestDebugRequestsRecordsTraffic(t *testing.T) {
	_, hs := newTestServer(t, nil)
	get(t, hs.URL, "/slack")             // miss
	get(t, hs.URL, "/slack")             // hit
	get(t, hs.URL, "/paths?k=zero")      // 400
	code, b := get(t, hs.URL, "/debug/requests")
	if code != 200 {
		t.Fatalf("/debug/requests answered %d", code)
	}
	var rep DebugRequestsReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Requests) != 3 {
		t.Fatalf("recorded %d requests, want 3", len(rep.Requests))
	}
	// Newest first: the 400, then the hit, then the miss.
	if rep.Requests[0].Route != "paths" || rep.Requests[0].Status != 400 {
		t.Fatalf("newest record: %+v", rep.Requests[0])
	}
	if rep.Requests[1].Cache != "hit" || rep.Requests[2].Cache != "miss" {
		t.Fatalf("cache outcomes: %q then %q", rep.Requests[2].Cache, rep.Requests[1].Cache)
	}
	for _, r := range rep.Requests[1:] {
		if r.Route != "slack" || r.Status != 200 || r.Epoch != 0 {
			t.Fatalf("slack record: %+v", r)
		}
		if r.TraceID == "" || r.LatencyMs < 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d records under no contention", rep.Dropped)
	}

	// ?limit= caps the answer, still newest-first.
	code, b = get(t, hs.URL, "/debug/requests?limit=1")
	if code != 200 {
		t.Fatal("limited /debug/requests failed")
	}
	var lim DebugRequestsReport
	if err := json.Unmarshal(b, &lim); err != nil {
		t.Fatal(err)
	}
	// The /debug/requests call above was itself not recorded (debug routes
	// bypass handle()), so the newest is still the paths 400.
	if len(lim.Requests) != 1 || lim.Requests[0].Route != "paths" {
		t.Fatalf("limit=1 answer: %+v", lim.Requests)
	}
}

// An ECO leaves a commit record with the per-phase audit timeline:
// resolve, apply (edit + re-time), swap (with the cache purge count) and
// replay durations that add up inside the total.
func TestDebugEpochsAuditsCommitPhases(t *testing.T) {
	_, hs := newTestServer(t, nil)
	get(t, hs.URL, "/slack") // populate the cache so the swap purges something
	cell, to := resizeTarget(t)
	code, b := post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))
	if code != 200 {
		t.Fatalf("eco answered %d: %s", code, b)
	}
	code, b = get(t, hs.URL, "/debug/epochs")
	if code != 200 {
		t.Fatalf("/debug/epochs answered %d", code)
	}
	var rep DebugEpochsReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Commits) != 1 {
		t.Fatalf("recorded %d commits, want 1", len(rep.Commits))
	}
	cr := rep.Commits[0]
	if cr.Epoch != 1 || cr.OpsApplied != 1 || cr.Err != "" {
		t.Fatalf("commit record: %+v", cr)
	}
	if cr.CachePurged < 1 {
		t.Fatalf("swap purged %d cache entries, want >= 1", cr.CachePurged)
	}
	// Apply covers the shadow re-time and replay re-times the retired
	// snapshot — both do real STA work and must show non-zero durations;
	// the phases must fit inside the total.
	if cr.ApplyMs <= 0 || cr.ReplayMs <= 0 {
		t.Fatalf("phase durations not recorded: apply=%v replay=%v", cr.ApplyMs, cr.ReplayMs)
	}
	if cr.ResolveMs < 0 || cr.SwapMs < 0 {
		t.Fatalf("negative phase durations: %+v", cr)
	}
	if sum := cr.ResolveMs + cr.ApplyMs + cr.SwapMs + cr.ReplayMs; sum > cr.TotalMs+0.001 {
		t.Fatalf("phases (%v ms) exceed total (%v ms)", sum, cr.TotalMs)
	}

	// A rejected commit is audited too, with its error.
	post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: "no_such_cell", To: to}))
	_, b = get(t, hs.URL, "/debug/epochs")
	var rep2 DebugEpochsReport
	if err := json.Unmarshal(b, &rep2); err != nil {
		t.Fatal(err)
	}
	if len(rep2.Commits) != 2 {
		t.Fatalf("failed commit not audited: %d records", len(rep2.Commits))
	}
	if rep2.Commits[0].Err == "" || rep2.Commits[0].Epoch != 0 {
		t.Fatalf("failed-commit record: %+v", rep2.Commits[0])
	}
}

// /debug/slow filters by latency threshold: everything at 0ms, nothing at
// an absurd threshold, 400 on garbage.
func TestDebugSlowThresholdFilter(t *testing.T) {
	_, hs := newTestServer(t, nil)
	get(t, hs.URL, "/slack")
	get(t, hs.URL, "/paths?k=2")

	code, b := get(t, hs.URL, "/debug/slow?threshold_ms=0")
	if code != 200 {
		t.Fatalf("/debug/slow answered %d", code)
	}
	var rep DebugSlowReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ThresholdMs != 0 || len(rep.Requests) != 2 {
		t.Fatalf("threshold 0 returned %d of 2 requests (threshold %v)", len(rep.Requests), rep.ThresholdMs)
	}
	code, b = get(t, hs.URL, "/debug/slow?threshold_ms=1e9")
	if code != 200 {
		t.Fatal("huge threshold rejected")
	}
	var none DebugSlowReport
	if err := json.Unmarshal(b, &none); err != nil {
		t.Fatal(err)
	}
	if len(none.Requests) != 0 {
		t.Fatalf("threshold 1e9 matched %d requests", len(none.Requests))
	}
	if code, _ = get(t, hs.URL, "/debug/slow?threshold_ms=fast"); code != 400 {
		t.Fatalf("garbage threshold answered %d", code)
	}
}

// promSample matches one exposition line: name{optional labels} value.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// /metrics?format=prom serves valid Prometheus text exposition: every line
// is a comment or a sample, counters carry _total, histograms emit
// cumulative buckets with +Inf, and the per-route request series from the
// traffic above are present.
func TestMetricsPromFormat(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) { c.Obs = obs.NewRecorder() })
	get(t, hs.URL, "/slack")
	get(t, hs.URL, "/slack")
	get(t, hs.URL, "/paths?k=zero") // one error to populate the error counter

	resp, err := http.Get(hs.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("prom metrics answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
	for _, want := range []string{
		"timingd_slack_requests_total 2",
		"timingd_paths_errors_total 1",
		`timingd_slack_latency_ms_bucket{le="+Inf"} 2`,
		"timingd_slack_latency_ms_count 2",
		"# TYPE timingd_slack_latency_ms histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// The JSON dump stays the default.
	resp2, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default metrics content type %q", ct)
	}
}

// /healthz reports the operator dashboard fields: served epoch, degraded
// flag, uptime and flight-recorder occupancy against capacity.
func TestHealthzReportsEpochAndFlightState(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.FlightRequests = 8
		c.FlightCommits = 4
	})
	get(t, hs.URL, "/slack")
	cell, to := resizeTarget(t)
	post(t, hs.URL, "/eco", opsJSON(Op{Kind: "resize", Cell: cell, To: to}))

	code, b := get(t, hs.URL, "/healthz")
	if code != 200 {
		t.Fatalf("healthz answered %d", code)
	}
	var h Health
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Degraded {
		t.Fatalf("health status: %+v", h)
	}
	if h.Epoch != 1 {
		t.Fatalf("health epoch %d after one commit", h.Epoch)
	}
	if h.UptimeSec <= 0 {
		t.Fatalf("uptime %v", h.UptimeSec)
	}
	if h.FlightRequestsCap != 8 || h.FlightCommitsCap != 4 {
		t.Fatalf("flight caps: %+v", h)
	}
	if h.FlightRequests != 2 || h.FlightCommits != 1 {
		t.Fatalf("flight occupancy: requests=%d commits=%d", h.FlightRequests, h.FlightCommits)
	}
}
