package timingd

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"

	"newgame/internal/netlist"
	"newgame/internal/pack"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
)

// LogName is the epoch log's filename inside the snapshot directory.
const LogName = "epochs.log"

// newBinder builds the session parasitics binder: keyed synthesis, seeded
// with any trees carried in from a restored snapshot. Every session of one
// server shares the saved map (read-only), so restored and freshly built
// snapshots serve bit-identical trees.
func (c *Config) newBinder() func(*netlist.Net) *parasitics.Tree {
	return sta.NewSnapshotNetBinder(c.Stack, c.Seed, c.savedTrees)
}

// snapshotInfo is the boot-time provenance healthz reports.
type snapshotInfo struct {
	dir           string
	restoredFrom  string
	snapshotEpoch int64
	logReplayed   int
}

// applyRestore overwrites the boot inputs with the snapshot's state, so
// the rest of NewServer builds from decoded bytes instead of text-parsed
// or generated state.
func (c *Config) applyRestore() {
	snap := c.Restore
	c.Design = snap.Design
	c.Recipe = *snap.Recipe
	c.Stack = snap.Stack
	c.ClockPort = snap.ClockPort
	c.BasePeriod = snap.BasePeriod
	c.InputArrival = snap.InputArrival
	c.Seed = snap.Seed
	c.savedTrees = snap.SavedTrees()
}

// recoverLog replays the epoch log's tail onto the freshly built sessions
// and opens it for appending. Records at or before the boot epoch (already
// inside the restored snapshot) are kept as history; each later record must
// advance the epoch by exactly one — a gap means the log belongs to a
// different timeline and the boot fails rather than serve wrong state.
// A torn tail (crash mid-append) and records beyond RestoreToEpoch are
// dropped by atomically rewriting the log to the retained prefix, so the
// reopened log's on-disk history is exactly what the server replayed.
func (s *Server) recoverLog() error {
	logPath := filepath.Join(s.cfg.SnapshotDir, LogName)
	recs, truncated, err := pack.ReadLog(logPath)
	if err != nil {
		return fmt.Errorf("timingd: reading epoch log: %w", err)
	}
	rewrite := truncated
	var kept []pack.EpochRecord
	for _, rec := range recs {
		if rec.Epoch <= s.snap.snapshotEpoch {
			kept = append(kept, rec)
			continue
		}
		if s.cfg.RestoreToEpoch > 0 && rec.Epoch > s.cfg.RestoreToEpoch {
			rewrite = true
			break
		}
		if want := s.epoch.Load() + 1; rec.Epoch != want {
			return fmt.Errorf("timingd: epoch log gap: have epoch %d, next record is %d", want-1, rec.Epoch)
		}
		if _, err := s.commit(context.Background(), opsFromRecord(rec)); err != nil {
			return fmt.Errorf("timingd: replaying epoch %d: %w", rec.Epoch, err)
		}
		kept = append(kept, rec)
		s.snap.logReplayed++
	}
	if rewrite {
		if err := pack.RewriteLog(logPath, kept); err != nil {
			return fmt.Errorf("timingd: rewriting epoch log: %w", err)
		}
	}
	wal, err := pack.OpenLog(logPath)
	if err != nil {
		return fmt.Errorf("timingd: opening epoch log: %w", err)
	}
	s.wal = wal
	return nil
}

// logCommit appends a committed epoch to the log. Append failures don't
// fail the commit — it is already visible — but they are latched for
// healthz: an operator must know the crash-recovery trail went cold.
func (s *Server) logCommit(epoch int64, ops []Op) {
	if s.wal == nil {
		return
	}
	if err := s.wal.Append(pack.EpochRecord{Epoch: epoch, Ops: opsToRecord(ops)}); err != nil {
		msg := err.Error()
		s.walErr.Store(&msg)
		s.count("timingd.wal.errors")
		return
	}
	s.walAppended.Add(1)
}

func opsToRecord(ops []Op) []pack.EpochOp {
	out := make([]pack.EpochOp, len(ops))
	for i, op := range ops {
		out[i] = pack.EpochOp{Kind: op.Kind, Cell: op.Cell, Net: op.Net, Loads: op.Loads, To: op.To}
	}
	return out
}

func opsFromRecord(rec pack.EpochRecord) []Op {
	out := make([]Op, len(rec.Ops))
	for i, op := range rec.Ops {
		out[i] = Op{Kind: op.Kind, Cell: op.Cell, Net: op.Net, Loads: op.Loads, To: op.To}
	}
	return out
}

// collectTrees materializes the session's resident parasitic trees in net
// order. Nets not yet touched by any analysis are synthesized now — the
// binder is deterministic, so this only moves cost, never changes a tree.
func (s *session) collectTrees() []pack.NetTree {
	var out []pack.NetTree
	for _, n := range s.d.Nets {
		if t := s.binder(n); t != nil {
			out = append(out, pack.NetTree{Net: n.Name, Need: len(t.Sinks), Tree: t})
		}
	}
	return out
}

// save snapshots the full resident state at the current epoch into
// SnapshotDir as epoch-<N>.pack. It serializes against the writer (the
// shadow is bit-identical to the served snapshot between writer operations,
// so encoding the shadow never blocks readers).
func (s *Server) save() (*SaveReport, error) {
	if s.cfg.SnapshotDir == "" {
		return nil, badRequest("snapshot persistence disabled: server started without a snapshot directory")
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if s.degraded.Load() {
		return nil, fmt.Errorf("server degraded by earlier failed commit; refusing to snapshot")
	}
	sh := s.shadow
	sh.mu.Lock()
	defer sh.mu.Unlock()
	epoch := s.epoch.Load()
	snap := &pack.Snapshot{
		Design:       sh.d,
		Recipe:       &s.cfg.Recipe,
		Stack:        s.cfg.Stack,
		ClockPort:    s.cfg.ClockPort,
		BasePeriod:   s.cfg.BasePeriod,
		InputArrival: s.cfg.InputArrival,
		Seed:         s.cfg.Seed,
		Epoch:        epoch,
		Topology:     sh.topology(),
		Trees:        sh.collectTrees(),
	}
	path := filepath.Join(s.cfg.SnapshotDir, fmt.Sprintf("epoch-%06d.pack", epoch))
	n, err := pack.Save(path, snap)
	if err != nil {
		return nil, err
	}
	s.count("timingd.snapshots")
	return &SaveReport{Path: path, Epoch: epoch, Bytes: n}, nil
}

func (s *Server) handleSave(ctx context.Context, _ *http.Request) ([]byte, error) {
	rep, err := s.save()
	if err != nil {
		return nil, err
	}
	if info := reqInfoFrom(ctx); info != nil {
		info.epoch = rep.Epoch
	}
	return marshalBody(rep)
}

// snapshotHealth renders the provenance block for /healthz, nil when
// snapshot persistence is off.
func (s *Server) snapshotHealth() *SnapshotHealth {
	if s.cfg.SnapshotDir == "" && s.snap.restoredFrom == "" {
		return nil
	}
	h := &SnapshotHealth{
		Dir:           s.cfg.SnapshotDir,
		RestoredFrom:  s.snap.restoredFrom,
		SnapshotEpoch: s.snap.snapshotEpoch,
		LogReplayed:   s.snap.logReplayed,
		LogAppended:   s.walAppended.Load(),
	}
	if msg := s.walErr.Load(); msg != nil {
		h.LogError = *msg
	}
	return h
}
