package client

import (
	"context"
	"net/http"

	"newgame/internal/timingd"
)

// Prepare runs phase one of the cluster epoch barrier on this shard:
// apply and re-time ops on the shadow, hold the result pending
// commit/abort. BaseEpoch must equal the shard's current epoch or the
// shard answers 409.
func (c *Client) Prepare(ctx context.Context, txn string, baseEpoch int64, ops []timingd.Op) (timingd.PrepareResponse, error) {
	var out timingd.PrepareResponse
	err := c.do(ctx, http.MethodPost, "/cluster/prepare",
		timingd.PrepareRequest{Txn: txn, BaseEpoch: baseEpoch, Ops: ops}, &out)
	return out, err
}

// CommitTxn publishes a prepared transaction, advancing the shard's
// epoch. Committing an unknown (expired or aborted) txn is a 409.
func (c *Client) CommitTxn(ctx context.Context, txn string) (timingd.TxnResponse, error) {
	var out timingd.TxnResponse
	err := c.do(ctx, http.MethodPost, "/cluster/commit", timingd.TxnRequest{Txn: txn}, &out)
	return out, err
}

// AbortTxn rolls back a prepared transaction. Idempotent: aborting an
// unknown txn answers Done=false with status 200.
func (c *Client) AbortTxn(ctx context.Context, txn string) (timingd.TxnResponse, error) {
	var out timingd.TxnResponse
	err := c.do(ctx, http.MethodPost, "/cluster/abort", timingd.TxnRequest{Txn: txn}, &out)
	return out, err
}

// ClusterInfo fetches the shard's cluster-facing identity: role, epoch,
// scenario set and any pending transaction.
func (c *Client) ClusterInfo(ctx context.Context) (timingd.ClusterInfo, error) {
	var out timingd.ClusterInfo
	err := c.do(ctx, http.MethodGet, "/cluster/info", nil, &out)
	return out, err
}
