// Package client is the Go client for the timingd HTTP/JSON API. It
// shares the wire types with the server package, so a round trip is
// lossless, and it surfaces the daemon's backpressure (429) and timeout
// (504) answers as typed errors callers can branch on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"newgame/internal/timingd"
)

// Client talks to one timingd instance.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8374".
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Retry bounds automatic backoff-retry of 429 refusals; the zero
	// value keeps the old single-attempt behavior.
	Retry RetryPolicy
}

// New returns a client for the given base URL.
func New(base string) *Client { return &Client{Base: base} }

// StatusError reports a non-2xx daemon answer.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's Retry-After advice on 429 answers
	// (zero when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("timingd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// IsBackpressure reports whether err is the daemon's queue-full refusal —
// the caller should back off and retry.
func IsBackpressure(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues the request, transparently retrying backpressure refusals
// within the client's RetryPolicy: exponential backoff from BaseDelay,
// floored at the server's Retry-After advice, jittered, bounded by
// MaxAttempts and MaxElapsed. An exhausted budget returns the last 429
// unchanged, so IsBackpressure still classifies it.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	p := c.Retry.withDefaults()
	start := time.Now()
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		se, ok := err.(*StatusError)
		if err == nil || !ok || se.Code != http.StatusTooManyRequests {
			return err
		}
		if attempt >= p.MaxAttempts {
			return err
		}
		delay := p.backoffDelay(attempt, se.RetryAfter)
		if time.Since(start)+delay > p.MaxElapsed {
			return err
		}
		if serr := p.doSleep(ctx, delay); serr != nil {
			return err
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &eb)
		return &StatusError{
			Code:       resp.StatusCode,
			Msg:        eb.Error,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Slack fetches the merged per-scenario WNS/TNS summary.
func (c *Client) Slack(ctx context.Context) (timingd.SlackReport, error) {
	var out timingd.SlackReport
	err := c.do(ctx, http.MethodGet, "/slack", nil, &out)
	return out, err
}

// Endpoints fetches the limit worst endpoint checks of kind ("setup" or
// "hold") in the named scenario ("" = first scenario).
func (c *Client) Endpoints(ctx context.Context, scenario, kind string, limit int) (timingd.EndpointsReport, error) {
	q := url.Values{}
	if scenario != "" {
		q.Set("scenario", scenario)
	}
	if kind != "" {
		q.Set("kind", kind)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var out timingd.EndpointsReport
	err := c.do(ctx, http.MethodGet, "/endpoints?"+q.Encode(), nil, &out)
	return out, err
}

// Paths fetches the k worst paths of kind in the named scenario, re-timed
// path-based with CRPR credit.
func (c *Client) Paths(ctx context.Context, scenario, kind string, k int) (timingd.PathsReport, error) {
	q := url.Values{}
	if scenario != "" {
		q.Set("scenario", scenario)
	}
	if kind != "" {
		q.Set("kind", kind)
	}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	var out timingd.PathsReport
	err := c.do(ctx, http.MethodGet, "/paths?"+q.Encode(), nil, &out)
	return out, err
}

// TriageExtract fetches one scenario's relation-graph extract — the unit
// a cluster coordinator gathers from the owning shard before merging the
// triage report. k and window are forwarded verbatim when non-empty so
// the shard applies exactly the knobs the client sent (defaults
// otherwise).
func (c *Client) TriageExtract(ctx context.Context, scenario, k, window string) (timingd.TriageExtract, error) {
	q := url.Values{}
	if scenario != "" {
		q.Set("scenario", scenario)
	}
	if k != "" {
		q.Set("k", k)
	}
	if window != "" {
		q.Set("window", window)
	}
	var out timingd.TriageExtract
	err := c.do(ctx, http.MethodGet, "/triage/extract?"+q.Encode(), nil, &out)
	return out, err
}

// WhatIf evaluates ops against the current baseline and rolls them back.
func (c *Client) WhatIf(ctx context.Context, ops []timingd.Op) (timingd.WhatIfReport, error) {
	var out timingd.WhatIfReport
	err := c.do(ctx, http.MethodPost, "/whatif", struct {
		Ops []timingd.Op `json:"ops"`
	}{ops}, &out)
	return out, err
}

// Commit applies ops as an ECO, advancing the epoch.
func (c *Client) Commit(ctx context.Context, ops []timingd.Op) (timingd.WhatIfReport, error) {
	var out timingd.WhatIfReport
	err := c.do(ctx, http.MethodPost, "/eco", struct {
		Ops []timingd.Op `json:"ops"`
	}{ops}, &out)
	return out, err
}

// Health fetches the liveness summary (never queued server-side).
func (c *Client) Health(ctx context.Context) (timingd.Health, error) {
	var out timingd.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}
