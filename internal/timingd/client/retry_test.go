package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// refuseN answers 429 (with Retry-After advice) for the first n
// requests, then serves a healthz-shaped 200.
func refuseN(n int, retryAfter string, hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
	})
}

// noSleep swaps the backoff sleep for a recording no-op so retry tests
// run instantly and can assert on the computed delays.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

// TestRetrySucceedsAfterBackpressure: transient 429s are absorbed
// within the attempt budget and the caller sees only the success.
func TestRetrySucceedsAfterBackpressure(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(refuseN(2, "1", &hits))
	defer hs.Close()

	var delays []time.Duration
	cl := New(hs.URL)
	cl.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Second, MaxElapsed: time.Minute, sleep: noSleep(&delays)}

	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatalf("health after transient 429s: %v", err)
	}
	if h.Status != "ok" || hits.Load() != 3 {
		t.Fatalf("status %q after %d hits", h.Status, hits.Load())
	}
	// Both waits honored the server's Retry-After floor of 1s (with up
	// to +25% jitter) rather than the 1ms base.
	if len(delays) != 2 {
		t.Fatalf("delays %v", delays)
	}
	for _, d := range delays {
		if d < 750*time.Millisecond || d > 1500*time.Millisecond {
			t.Fatalf("delay %v ignored Retry-After floor", d)
		}
	}
}

// TestRetryBudgetExhausted: a persistently refusing server yields the
// last 429 unchanged — still classified as backpressure, never morphed
// into a different error.
func TestRetryBudgetExhausted(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(refuseN(1000, "", &hits))
	defer hs.Close()

	var delays []time.Duration
	cl := New(hs.URL)
	cl.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, MaxElapsed: time.Minute, sleep: noSleep(&delays)}

	_, err := cl.Slack(context.Background())
	if !IsBackpressure(err) {
		t.Fatalf("exhausted retries must stay backpressure, got %v", err)
	}
	if hits.Load() != 3 || len(delays) != 2 {
		t.Fatalf("%d attempts, %d sleeps", hits.Load(), len(delays))
	}
	// Exponential: second delay ~2x the first (within jitter bands).
	if delays[1] < delays[0] {
		t.Fatalf("delays not increasing: %v", delays)
	}
}

// TestRetryElapsedCap: when the next wait would cross MaxElapsed the
// client gives up immediately instead of sleeping through the budget.
func TestRetryElapsedCap(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(refuseN(1000, "30", &hits))
	defer hs.Close()

	cl := New(hs.URL)
	// Retry-After of 30s floors every delay far above the 50ms budget:
	// exactly one attempt, no sleep.
	cl.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Minute, MaxElapsed: 50 * time.Millisecond}

	start := time.Now()
	_, err := cl.Slack(context.Background())
	if !IsBackpressure(err) {
		t.Fatalf("want 429, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("%d attempts, want 1", hits.Load())
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("client slept through its elapsed budget")
	}
	if se := err.(*StatusError); se.RetryAfter != 30*time.Second {
		t.Fatalf("RetryAfter = %v", se.RetryAfter)
	}
}

// TestNoRetryOnOtherErrors: non-429 failures are never retried, and the
// zero policy keeps the old single-attempt behavior on 429 too.
func TestNoRetryOnOtherErrors(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "bad op"})
	}))
	defer hs.Close()

	cl := New(hs.URL)
	cl.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	if _, err := cl.Slack(context.Background()); err == nil || hits.Load() != 1 {
		t.Fatalf("400 retried: err %v, hits %d", err, hits.Load())
	}

	var hits2 atomic.Int64
	hs2 := httptest.NewServer(refuseN(1000, "", &hits2))
	defer hs2.Close()
	cl2 := New(hs2.URL) // zero policy
	if _, err := cl2.Slack(context.Background()); !IsBackpressure(err) || hits2.Load() != 1 {
		t.Fatalf("zero policy: err %v, hits %d", err, hits2.Load())
	}
}
