package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"newgame/internal/circuits"
	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/parasitics"
	"newgame/internal/timingd"
)

// TestClientRoundTrip drives every client method against a live server:
// the wire types are shared with the server package, so this is the
// lossless-round-trip check for the whole API surface, plus the typed
// error mapping for validation failures.
func TestClientRoundTrip(t *testing.T) {
	stack := parasitics.Stack16()
	recipe := core.OldGoalPosts(liberty.Node16, stack)
	d := circuits.Block(recipe.Scenarios[0].Lib, circuits.BlockSpec{
		Name: "cl", Inputs: 10, Outputs: 10, FFs: 24, Gates: 260,
		MaxDepth: 8, Seed: 11, ClockBufferLevels: 2,
		VtMix: [3]float64{0, 0.5, 0.5},
	})
	srv, err := timingd.NewServer(timingd.Config{
		Design: d, Recipe: recipe, Stack: stack, BasePeriod: 560, Seed: 11,
		QueryWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	ctx := context.Background()
	cl := New(hs.URL)

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 0 || h.Scenarios != 2 {
		t.Fatalf("health %+v", h)
	}

	slack, err := cl.Slack(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(slack.Scenarios) != 2 {
		t.Fatalf("slack %+v", slack)
	}

	eps, err := cl.Endpoints(ctx, slack.Scenarios[1].Scenario, "hold", 4)
	if err != nil {
		t.Fatal(err)
	}
	if eps.Scenario != slack.Scenarios[1].Scenario || len(eps.Endpoints) != 4 {
		t.Fatalf("endpoints %+v", eps)
	}

	paths, err := cl.Paths(ctx, "", "setup", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths.Paths) != 2 {
		t.Fatalf("paths %+v", paths)
	}

	// Find a resize op and run it through WhatIf then Commit.
	var op timingd.Op
	lib := recipe.Scenarios[0].Lib
	for _, c := range d.Cells {
		m := lib.Cell(c.TypeName)
		if m == nil || m.IsSequential() || !strings.HasSuffix(c.TypeName, "_SVT") {
			continue
		}
		v := strings.TrimSuffix(c.TypeName, "_SVT") + "_LVT"
		if lib.Cell(v) != nil {
			op = timingd.Op{Kind: "resize", Cell: c.Name, To: v}
			break
		}
	}
	if op.Cell == "" {
		t.Fatal("no resize target")
	}
	wif, err := cl.WhatIf(ctx, []timingd.Op{op})
	if err != nil {
		t.Fatal(err)
	}
	if wif.Committed || wif.Epoch != 0 || len(wif.After) != 2 {
		t.Fatalf("whatif %+v", wif)
	}
	eco, err := cl.Commit(ctx, []timingd.Op{op})
	if err != nil {
		t.Fatal(err)
	}
	if !eco.Committed || eco.Epoch != 1 {
		t.Fatalf("eco %+v", eco)
	}

	// Validation failures surface as typed 400s, not backpressure.
	_, err = cl.WhatIf(ctx, []timingd.Op{{Kind: "resize", Cell: "no_such_cell", To: op.To}})
	se, ok := err.(*StatusError)
	if !ok || se.Code != 400 {
		t.Fatalf("unknown-cell error = %v", err)
	}
	if IsBackpressure(err) {
		t.Fatal("validation error misclassified as backpressure")
	}
}
