package client

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds automatic retries of the daemon's backpressure
// (429) refusals. A 429 means the request was refused at admission and
// never executed, so retrying is safe for reads and writes alike. Only
// 429 is retried: every other failure — validation, timeout, transport —
// surfaces immediately.
//
// The zero value disables retries (single attempt), preserving the old
// client behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (<=1 disables retries).
	MaxAttempts int
	// BaseDelay is the first backoff step; it doubles per attempt
	// (default 50ms when retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step (default 2s).
	MaxDelay time.Duration
	// MaxElapsed caps the whole retry budget including the sleeps about
	// to be taken; when the next wait would cross it, the last 429 is
	// returned instead (default 5s).
	MaxElapsed time.Duration
	// Seed perturbs the jitter stream, making test runs reproducible.
	Seed uint64

	// sleep is a test seam; nil uses a context-aware timer sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts > 1 {
		if p.BaseDelay <= 0 {
			p.BaseDelay = 50 * time.Millisecond
		}
		if p.MaxDelay <= 0 {
			p.MaxDelay = 2 * time.Second
		}
		if p.MaxElapsed <= 0 {
			p.MaxElapsed = 5 * time.Second
		}
	}
	return p
}

// jitterSeq decorrelates concurrent clients sharing a Seed (or the zero
// Seed) without unseeded global randomness.
var jitterSeq atomic.Uint64

// jitter scales d by a factor in [0.75, 1.25) drawn from a splitmix64
// stream — enough spread to break retry synchronization across a fleet
// of clients hammering one recovering daemon.
func jitter(d time.Duration, seed uint64) time.Duration {
	z := seed + jitterSeq.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	f := 0.75 + 0.5*float64(z%1024)/1024
	return time.Duration(float64(d) * f)
}

// backoffDelay computes the wait before retry number attempt (1-based):
// exponential from BaseDelay, floored at the server's Retry-After
// advice, capped at MaxDelay, then jittered.
func (p RetryPolicy) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d < p.BaseDelay { // shift overflow
		d = p.MaxDelay
	}
	if d < retryAfter {
		d = retryAfter
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return jitter(d, p.Seed)
}

func (p RetryPolicy) doSleep(ctx context.Context, d time.Duration) error {
	if p.sleep != nil {
		return p.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads the daemon's Retry-After advice (delta-seconds
// form; timingd sends "1"). Unparseable or absent values mean no floor.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}
