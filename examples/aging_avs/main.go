// aging_avs: lifetime signoff with adaptive voltage scaling. Sizes the AES
// circuit model at each of the seven BTI aging signoff corners, simulates
// the 10-year AVS/aging chicken-egg loop, and prints the Figure 9 power/
// area trade-off. Then contrasts worst-case fixed-voltage signoff with
// per-die AVS (the paper's "signoff at typical" game-changer).
package main

import (
	"fmt"

	"newgame/internal/aging"
	"newgame/internal/avs"
	"newgame/internal/liberty"
	"newgame/internal/report"
)

func main() {
	c := aging.AESModel()
	cfg := aging.DefaultLifetime()

	fmt.Printf("circuit %s: %d-stage critical path, target %.0f ps (%.2f GHz)\n\n",
		c.Name, c.Stages, c.TargetDelay(), c.FreqGHz())

	outs := aging.SweepCorners(cfg, c, c.Tech.VDDNominal, aging.DefaultCorners())
	tb := report.NewTable("aging signoff corner sweep (10-year AVS lifetime)",
		"corner", "assumed dVt (mV)", "area %", "avg power %", "V start", "V end", "met")
	for _, o := range outs {
		tb.Row(o.Corner.Index, o.Corner.AssumedDvt*1000, o.AreaPct, o.PowerPct,
			o.Result.InitialV, o.Result.FinalV, o.Result.Met)
	}
	fmt.Println(tb.String())

	// The voltage trajectory of the closed loop for a mid corner.
	sized := c.SizeFor(c.Tech.VDDNominal, 0.03)
	r := cfg.Simulate(sized)
	fmt.Printf("closed-loop lifetime at corner 4: V %.3f -> %.3f, final dVt %.1f mV\n\n",
		r.InitialV, r.FinalV, r.FinalDvt*1000)

	// AVS vs worst-case signoff across a die population.
	ctl := avs.Controller{
		Monitor: avs.DDROFor(sized), MarginFrac: 0.04,
		VMin: 0.55, VMax: 1.05, VStep: 0.0125,
	}
	ctl.Calibrate(sized, 105)
	dies := []liberty.ProcessCorner{liberty.SS, liberty.SSG, liberty.TT, liberty.FFG, liberty.FF}
	cmp := avs.Compare(ctl, sized, dies, 105)
	tb2 := report.NewTable("per-die operating points", "die", "fixed V", "AVS V", "power saving")
	for i, die := range dies {
		saving := 1 - cmp.AVS[i].Power/cmp.Fixed[i].Power
		tb2.Row(die.Name, cmp.Fixed[i].V, cmp.AVS[i].V, report.Pct(saving))
	}
	fmt.Println(tb2.String())
	fmt.Printf("population mean power saving %s; DC margin removed on typical die %s\n",
		report.Pct(cmp.MeanPowerSaving), report.Ps(cmp.DCMarginPs))
}
