// hierarchical: flat versus ETM-based analysis (paper §4 Comment 3). Two
// blocks are analyzed standalone and condensed into extracted timing
// models; the top level then checks the inter-block interface against the
// models alone, and the result is compared with flat analysis of the fully
// composed netlist — abstraction pessimism and runtime both measured.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"newgame/internal/circuits"
	"newgame/internal/etm"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/report"
	"newgame/internal/sta"
)

func main() {
	lib := liberty.Generate(liberty.Node16,
		liberty.PVT{Process: liberty.SSG, Voltage: 0.72, Temp: 125}, liberty.GenOptions{})
	mkBlock := func(seed int64) *netlist.Design {
		return circuits.Block(lib, circuits.BlockSpec{
			Name: "blk", Inputs: 8, Outputs: 8, FFs: 32, Gates: 500,
			MaxDepth: 9, Seed: seed, ClockBufferLevels: 2,
		})
	}
	b1, b2 := mkBlock(71), mkBlock(72)
	const period = 900.0

	// Hierarchical flow: extract once per block, check glue with models.
	t0 := time.Now()
	m1, err := etm.ExtractWithBoundary(b1, b1.Port("clk"), period,
		sta.Config{Lib: lib}, etm.ConservativeBoundary, "b1")
	if err != nil {
		log.Fatal(err)
	}
	m2, err := etm.ExtractWithBoundary(b2, b2.Port("clk"), period,
		sta.Config{Lib: lib}, etm.ConservativeBoundary, "b2")
	if err != nil {
		log.Fatal(err)
	}
	extractTime := time.Since(t0)

	var wires []etm.Wire
	for i := 0; i < 8; i++ {
		out := fmt.Sprintf("out%d", i)
		in := fmt.Sprintf("in%d", i)
		if _, ok := m1.OutLate[out]; !ok {
			continue
		}
		if _, ok := m2.InputSetup[in]; !ok {
			continue
		}
		wires = append(wires, etm.Wire{
			FromBlock: "b1", FromPort: out, ToBlock: "b2", ToPort: in, Delay: 8,
		})
	}
	t0 = time.Now()
	glue, err := etm.TopLevelCheck(map[string]*etm.Model{"b1": m1, "b2": m2}, wires)
	if err != nil {
		log.Fatal(err)
	}
	glueTime := time.Since(t0)

	tb := report.NewTable("ETM glue check", "interface", "arrival (ps)", "allowed (ps)", "slack (ps)")
	for _, g := range glue {
		tb.Row(g.Wire.FromPort+" -> "+g.Wire.ToPort, g.Arrival, g.Allowed, g.Slack)
	}
	fmt.Println(tb.String())

	// Flat flow: compose and analyze everything.
	top := netlist.New("top")
	clk, _ := top.AddPort("clk", netlist.Input)
	pn1 := map[string]*netlist.Net{"clk": clk.Net}
	pn2 := map[string]*netlist.Net{"clk": clk.Net}
	for i := 0; i < 8; i++ {
		g, err := top.AddNet(fmt.Sprintf("glue%d", i))
		if err != nil {
			log.Fatal(err)
		}
		pn1[fmt.Sprintf("out%d", i)] = g
		pn2[fmt.Sprintf("in%d", i)] = g
		p, err := top.AddPort(fmt.Sprintf("tin%d", i), netlist.Input)
		if err != nil {
			log.Fatal(err)
		}
		pn1[fmt.Sprintf("in%d", i)] = p.Net
	}
	if err := circuits.Instantiate(top, b1, "b1", pn1); err != nil {
		log.Fatal(err)
	}
	if err := circuits.Instantiate(top, b2, "b2", pn2); err != nil {
		log.Fatal(err)
	}
	cons := sta.NewConstraints()
	cons.AddClock("clk", period, clk)
	t0 = time.Now()
	a, err := sta.New(top, cons, sta.Config{Lib: lib})
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	flatTime := time.Since(t0)

	flatCross := math.Inf(1)
	for _, e := range a.EndpointSlacks(sta.Setup) {
		if e.Pin == nil {
			continue
		}
		p := a.WorstPath(e)
		for _, st := range p.Steps {
			if st.Net != nil && len(st.Net.Name) >= 4 && st.Net.Name[:4] == "glue" {
				if e.Slack < flatCross {
					flatCross = e.Slack
				}
				break
			}
		}
	}
	fmt.Printf("flat cross-block WNS:      %8.1f ps  (%d-cell flat run in %s)\n",
		flatCross, len(top.Cells), flatTime.Round(time.Microsecond))
	fmt.Printf("ETM glue WNS:              %8.1f ps  (extract %s + glue check %s)\n",
		etm.WorstGlue(glue), extractTime.Round(time.Microsecond), glueTime.Round(time.Microsecond))
	fmt.Printf("abstraction pessimism:     %8.1f ps\n", flatCross-etm.WorstGlue(glue))
	fmt.Println("\nETM extraction amortizes across top-level iterations: block internals")
	fmt.Println("are analyzed once, then every top-level ECO re-checks only the glue.")
}
