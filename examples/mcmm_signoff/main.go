// mcmm_signoff: the corner super-explosion in practice. Enumerates the full
// scenario space for a wide-voltage-range 16nm-class SOC, analyzes a block
// under a representative subset, prunes dominated scenarios, and closes
// timing under the surviving MCMM set.
package main

import (
	"fmt"
	"log"

	"newgame/internal/circuits"
	"newgame/internal/core"
	"newgame/internal/liberty"
	"newgame/internal/mcmm"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
)

func main() {
	stack := parasitics.Stack16()

	// The full space a central engineering team stares down.
	sp := mcmm.Space{
		Modes: mcmm.DefaultModes(),
		PVTs: mcmm.VoltageTempGrid(
			[]float64{0.50, 0.60, 0.72, 0.80, 0.90, 1.00},
			[]float64{-30, 25, 125}),
		BEOLs:           append([]parasitics.CornerKind{parasitics.Typical}, parasitics.AllCorners...),
		MaskShiftCombos: 8, // three double-patterned layers
	}
	fmt.Printf("full scenario space: %d views\n", sp.Count())

	// Analyze a block at a handful of candidate corners to get the WNS
	// observations observational pruning needs.
	libFor := func(p mcmm.PVTCorner) *liberty.Library {
		return liberty.Generate(liberty.Node16,
			liberty.PVT{Process: p.Process, Voltage: p.Voltage, Temp: p.Temp},
			liberty.GenOptions{})
	}
	candidates := mcmm.VoltageTempGrid([]float64{0.60, 0.72}, []float64{-30, 125})
	seedLib := libFor(candidates[0])
	d := circuits.Block(seedLib, circuits.BlockSpec{
		Name: "mcmm_blk", Inputs: 12, Outputs: 12, FFs: 48, Gates: 600,
		Seed: 77, ClockBufferLevels: 2,
	})
	binder := sta.NewNetBinder(stack, 77)

	var results []mcmm.ScenarioResult
	for _, pc := range candidates {
		lib := libFor(pc)
		cons := sta.NewConstraints()
		cons.AddClock("clk", 900, d.Port("clk"))
		a, err := sta.New(d, cons, sta.Config{
			Lib: lib, Parasitics: binder,
			Scaling: stack.Corner(parasitics.RCWorst, 3),
			Derate:  sta.DefaultAOCV(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Run(); err != nil {
			log.Fatal(err)
		}
		results = append(results, mcmm.ScenarioResult{
			Scenario: mcmm.Scenario{
				Mode: mcmm.DefaultModes()[0], PVT: pc, BEOL: parasitics.RCWorst,
			},
			SetupWNS: a.WorstSlack(sta.Setup),
			HoldWNS:  a.WorstSlack(sta.Hold),
		})
		fmt.Printf("  %-18s setup WNS %8.1f  hold WNS %8.1f\n",
			pc.Name, a.WorstSlack(sta.Setup), a.WorstSlack(sta.Hold))
	}
	keep, pruned := mcmm.PruneDominated(results, 10)
	fmt.Printf("observational pruning: kept %d of %d analyzed corners (%d dominated)\n\n",
		len(keep), len(results), len(pruned))

	// Close timing under the production MCMM recipe.
	libs := core.GenerateNewLibs(liberty.Node16)
	recipe := core.NewGoalPosts(libs, stack)
	recipe.UsePBA = false // keep the demo fast
	e := &core.Engine{
		D: d, Recipe: recipe, BasePeriod: 700, ClockPort: d.Port("clk"),
		Parasitics: binder,
	}
	res, err := e.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
}
