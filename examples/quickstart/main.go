// Quickstart: build a small netlist by hand, bind a generated 16nm-class
// library, run static timing analysis, inspect the worst path, apply one
// fix, and watch the slack move. This is the five-minute tour of the
// repository's public surfaces.
package main

import (
	"fmt"
	"log"

	"newgame/internal/circuits"
	"newgame/internal/liberty"
	"newgame/internal/netlist"
	"newgame/internal/parasitics"
	"newgame/internal/sta"
)

func main() {
	// 1. Characterize a library at a slow signoff corner (SSG, 0.72 V,
	//    125 °C) from the built-in 16nm-class device model.
	lib := liberty.Generate(liberty.Node16,
		liberty.PVT{Process: liberty.SSG, Voltage: 0.72, Temp: 125},
		liberty.GenOptions{})

	// 2. Build a tiny design: two flip-flops with a NAND/NOR cone between
	//    them.
	d := netlist.New("quickstart")
	clk := must(d.AddPort("clk", netlist.Input))
	din := must(d.AddPort("din", netlist.Input))
	dout := must(d.AddPort("dout", netlist.Output))

	launch := mustCell(d, lib, "launch", "DFF_X1_SVT")
	capture := mustCell(d, lib, "capture", "DFF_X1_SVT")
	g1 := mustCell(d, lib, "g1", "NAND2_X1_HVT")
	g2 := mustCell(d, lib, "g2", "NOR2_X1_HVT")
	g3 := mustCell(d, lib, "g3", "INV_X1_HVT")

	q := mustNet(d, "q")
	n1 := mustNet(d, "n1")
	n2 := mustNet(d, "n2")
	n3 := mustNet(d, "n3")
	connect(d, launch, "CK", clk.Net)
	connect(d, capture, "CK", clk.Net)
	connect(d, launch, "D", din.Net)
	connect(d, launch, "Q", q)
	connect(d, g1, "A", q)
	connect(d, g1, "B", din.Net)
	connect(d, g1, "Z", n1)
	connect(d, g2, "A", n1)
	connect(d, g2, "B", q)
	connect(d, g2, "Z", n2)
	connect(d, g3, "A", n2)
	connect(d, g3, "Z", n3)
	connect(d, capture, "D", n3)
	connect(d, capture, "Q", dout.Net)

	// 3. Constrain: a 60 ps clock (deliberately tight) with some
	//    uncertainty.
	cons := sta.NewConstraints()
	ck := cons.AddClock("clk", 60, clk)
	ck.SetupUncertainty = 5

	// 4. Analyze with wire parasitics and AOCV derating.
	a, err := sta.New(d, cons, sta.Config{
		Lib:        lib,
		Parasitics: sta.NewNetBinder(parasitics.Stack16(), 1),
		Derate:     sta.DefaultAOCV(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup WNS before fixing: %.1f ps\n", a.WorstSlack(sta.Setup))
	for _, p := range a.WorstPaths(sta.Setup, 1) {
		fmt.Println("worst path:", p)
		r := a.PBA(p)
		fmt.Printf("GBA slack %.1f ps, PBA slack %.1f ps\n", p.GBASlack, r.Slack)
	}

	// 5. Fix it by hand the way the paper's Figure 1 recipe starts: Vt-swap
	//    the cone to LVT, then re-time.
	for _, c := range []*netlist.Cell{g1, g2, g3} {
		m := lib.Cell(c.TypeName)
		if v := lib.Variant(m, m.Drive, liberty.LVT); v != nil {
			c.SetType(v.Name)
		}
	}
	if err := a.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup WNS after Vt swap: %.1f ps\n", a.WorstSlack(sta.Setup))
}

func must(p *netlist.Port, err error) *netlist.Port {
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func mustNet(d *netlist.Design, name string) *netlist.Net {
	n, err := d.AddNet(name)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func mustCell(d *netlist.Design, lib *liberty.Library, name, master string) *netlist.Cell {
	c, err := circuits.AddCell(d, lib, name, master)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func connect(d *netlist.Design, c *netlist.Cell, pin string, n *netlist.Net) {
	if err := d.Connect(c, pin, n); err != nil {
		log.Fatal(err)
	}
}
