// mis_spice: the transistor-level multi-input-switching study of the
// paper's Figure 4, run on the built-in mini-SPICE: a 28nm-class NAND2 with
// an FO3 load, the second input's arrival offset swept, arc delay measured
// at each point — showing the MIS speed-up on falling inputs and slow-down
// on rising ones, at nominal and 80% supply.
package main

import (
	"fmt"
	"log"
	"math"

	"newgame/internal/report"
	"newgame/internal/spice"
)

func main() {
	for _, scale := range []float64{1.0, 0.8} {
		for _, rising := range []bool{false, true} {
			cfg := spice.MISConfig{Tech: spice.Tech28, VDDScale: scale, InputRising: rising}
			sis, err := cfg.ArcDelay(math.Inf(1))
			if err != nil {
				log.Fatal(err)
			}
			edge := "falling"
			if rising {
				edge = "rising"
			}
			fmt.Printf("VDD %.2f V, %s input: SIS arc delay %.2f ps\n",
				spice.Tech28.VDD*scale, edge, sis)
			var xs, ys []float64
			for _, off := range spice.DefaultOffsets() {
				d, err := cfg.ArcDelay(off)
				if err != nil {
					continue // output suppressed at this offset
				}
				xs = append(xs, off)
				ys = append(ys, d)
			}
			fmt.Print(report.Series(
				fmt.Sprintf("arc delay vs IN1 offset (%s, %.2fV)", edge, spice.Tech28.VDD*scale),
				xs, ys, 48, 9))
			res, err := cfg.Run(nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("extreme MIS delay %.2f ps at offset %.0f ps -> MIS/SIS = %.2f\n\n",
				res.MIS, res.AtOffset, res.Ratio)
		}
	}
	fmt.Println("paper Figure 4: MIS < ~50% of SIS for falling inputs (hold-critical),")
	fmt.Println("MIS > ~110% of SIS for rising inputs (setup-critical).")
}
