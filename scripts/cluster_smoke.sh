#!/usr/bin/env bash
# CI smoke for the scenario-sharded timingd cluster: save a snapshot pack
# from a single daemon, boot a coordinator plus two workers restored from
# that shared pack (one scenario each), commit an ECO through the epoch
# barrier, kill -9 one worker under a mixed load, verify reads stay up
# degraded while writes refuse 503, hold the coordinator read path above
# -min-qps while degraded, then restart the worker and verify catch-up
# replay reconverges the cluster so the next ECO commits everywhere.
set -euo pipefail

COORD_ADDR="127.0.0.1:18380"
W1_ADDR="127.0.0.1:18381"
W2_ADDR="127.0.0.1:18382"
COORD="http://$COORD_ADDR"
W1_SCEN="func_ss_cw"
W2_SCEN="func_ff_cb"

WORK="$(mktemp -d)"
BIN="$WORK/timingd"
SNAPDIR="$WORK/snap"

cleanup() {
  for pid in "${W2PID:-}" "${W1PID:-}" "${CPID:-}" "${LGPID:-}" "${DPID:-}" "${SNPID:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "cluster smoke FAILED: $1"
  for log in seed coord w1 w2 w2b; do
    [[ -f "$WORK/$log.log" ]] && { echo "--- $log.log"; tail -40 "$WORK/$log.log"; }
  done
  exit 1
}

# wait_until URL GREP_PATTERN DESC [TRIES]
wait_until() {
  local url="$1" pattern="$2" desc="$3" tries="${4:-100}"
  for i in $(seq 1 "$tries"); do
    if curl -s "$url" 2>/dev/null | grep -q "$pattern"; then return 0; fi
    sleep 0.2
  done
  fail "timed out waiting for $desc"
}

go build -o "$BIN" ./cmd/timingd

# Seed pack: one plain daemon builds the design, saves a snapshot, dies.
# Everything after boots from that pack — the cluster's shared truth.
"$BIN" -addr "$W1_ADDR" -gates 700 -ffs 48 -snapshot-dir "$SNAPDIR" >"$WORK/seed.log" 2>&1 &
DPID=$!
for i in $(seq 1 100); do
  curl -sf "http://$W1_ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$DPID" 2>/dev/null || { echo "seed daemon exited:"; cat "$WORK/seed.log"; exit 1; }
  sleep 0.2
done
OP_JSON="$(grep -o '{"op":.*}' "$WORK/seed.log" | head -1)"
[[ -n "$OP_JSON" ]] || fail "no example op in seed banner"
OP_CELL="$(sed -n 's/.*"cell":"\([^"]*\)".*/\1/p' <<<"$OP_JSON")"
OP_TO="$(sed -n 's/.*"to":"\([^"]*\)".*/\1/p' <<<"$OP_JSON")"
curl -sf -X POST "http://$W1_ADDR/admin/save" >"$WORK/save.json" || fail "POST /admin/save"
PACK="$(sed -n 's/.*"path":"\([^"]*\)".*/\1/p' "$WORK/save.json")"
[[ -f "$PACK" ]] || fail "snapshot pack $PACK not on disk"
kill -9 "$DPID"; wait "$DPID" 2>/dev/null || true
unset DPID
echo "cluster smoke: pack saved at $PACK, example op cell=$OP_CELL to=$OP_TO"

# Coordinator + two workers, one scenario each, all from the shared pack.
"$BIN" -addr "$COORD_ADDR" -role coordinator -restore "$PACK" -heartbeat 100ms >"$WORK/coord.log" 2>&1 &
CPID=$!
wait_until "$COORD/healthz" '"role":"coordinator"' "coordinator boot"
"$BIN" -addr "$W1_ADDR" -role worker -restore "$PACK" -join "$COORD" \
  -scenarios "$W1_SCEN" -heartbeat 100ms >"$WORK/w1.log" 2>&1 &
W1PID=$!
"$BIN" -addr "$W2_ADDR" -role worker -restore "$PACK" -join "$COORD" \
  -scenarios "$W2_SCEN" -heartbeat 100ms >"$WORK/w2.log" 2>&1 &
W2PID=$!
wait_until "$COORD/healthz" '"status":"ok"' "both workers alive"
curl -s "$COORD/healthz" | grep -q '"degraded":false' || fail "cluster degraded at boot"
echo "cluster smoke: coordinator + 2 workers converged"

# Merged reads and one barrier commit across both shards.
curl -sf "$COORD/slack" >"$WORK/slack0.json" || fail "GET /slack"
grep -q "\"$W1_SCEN\"" "$WORK/slack0.json" && grep -q "\"$W2_SCEN\"" "$WORK/slack0.json" \
  || fail "merged slack missing a scenario"
# Triage merge identity: a single node restored from the same pack (all
# scenarios resident) must serve /triage byte-identical to the 2-shard
# coordinator merging per-scenario extracts — same clusters, same ranks,
# same prune audit. tr strips the single node's trailing newline; the
# JSON bodies themselves contain none.
SN_ADDR="127.0.0.1:18383"
"$BIN" -addr "$SN_ADDR" -restore "$PACK" >"$WORK/single.log" 2>&1 &
SNPID=$!
for i in $(seq 1 100); do
  curl -sf "http://$SN_ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$SNPID" 2>/dev/null || fail "single-node reference exited"
  sleep 0.2
done
curl -sf "http://$SN_ADDR/triage" >"$WORK/triage_single.json" || fail "single-node GET /triage"
curl -sf "$COORD/triage" >"$WORK/triage_cluster.json" || fail "cluster GET /triage"
grep -q '"stats"' "$WORK/triage_single.json" || fail "single-node /triage has no stats"
cmp <(tr -d '\n' <"$WORK/triage_single.json") <(tr -d '\n' <"$WORK/triage_cluster.json") \
  || fail "/triage diverges between single node and 2-shard cluster"
kill "$SNPID"; wait "$SNPID" 2>/dev/null || true
unset SNPID
echo "cluster smoke: /triage byte-identical between single node and 2-shard cluster"

curl -sf -d "{\"ops\":[$OP_JSON]}" "$COORD/eco" >"$WORK/eco1.json" || fail "POST /eco"
grep -q '"committed":true' "$WORK/eco1.json" || fail "barrier eco not committed"
grep -q '"epoch":1' "$WORK/eco1.json" || fail "barrier eco epoch did not advance"
echo "cluster smoke: epoch-barrier ECO committed at epoch 1"

# Mixed load in the background, then kill -9 a worker mid-run: the
# cluster must degrade, not die.
"$BIN" -loadgen -target "$COORD" -duration 6s -clients 4 \
  -whatif-cell "$OP_CELL" -whatif-to "$OP_TO" >"$WORK/mixed.log" 2>&1 &
LGPID=$!
sleep 1
kill -9 "$W2PID"; wait "$W2PID" 2>/dev/null || true
unset W2PID
wait_until "$COORD/healthz" '"degraded":true' "dead-worker eviction" 50

curl -sf "$COORD/slack" >"$WORK/slackdeg.json" || fail "degraded GET /slack"
grep -q '"degraded":true' "$WORK/slackdeg.json" || fail "degraded slack not flagged"
grep -q "\"stale\":\[\"$W2_SCEN\"\]" "$WORK/slackdeg.json" || fail "stale scenario not reported"
ECO_CODE="$(curl -s -o "$WORK/ecodeg.json" -w '%{http_code}' -d "{\"ops\":[$OP_JSON]}" "$COORD/eco")"
[[ "$ECO_CODE" == "503" ]] || fail "eco against degraded cluster answered $ECO_CODE, want 503"
wait "$LGPID" 2>/dev/null || true
unset LGPID
echo "cluster smoke: degraded reads up, writes refused 503"

# Read-path floor while degraded: the surviving shard plus the reply
# cache must keep the coordinator above 1000 qps.
CLUSTER_LOADGEN_JSON="${CLUSTER_LOADGEN_JSON:-cluster-loadgen-report.json}"
"$BIN" -loadgen -target "$COORD" -duration 3s -clients 8 -min-qps 1000 -json \
  >"$CLUSTER_LOADGEN_JSON" || fail "degraded coordinator read path under 1000 qps"
echo "cluster smoke: degraded read path held; report in $CLUSTER_LOADGEN_JSON"

# Restart the dead worker from the same pack (epoch 0): registration
# replays the barrier oplog, reconverging it to the cluster epoch.
"$BIN" -addr "$W2_ADDR" -role worker -restore "$PACK" -join "$COORD" \
  -scenarios "$W2_SCEN" -heartbeat 100ms >"$WORK/w2b.log" 2>&1 &
W2PID=$!
wait_until "$COORD/healthz" '"status":"ok"' "worker rejoin" 150
curl -s "$COORD/healthz" | grep -q '"degraded":false' || fail "cluster still degraded after rejoin"

# Post-rejoin barrier: both shards commit, epoch 2 everywhere.
curl -sf -d "{\"ops\":[$OP_JSON]}" "$COORD/eco" >"$WORK/eco2.json" || fail "POST /eco after rejoin"
grep -q '"committed":true' "$WORK/eco2.json" || fail "post-rejoin eco not committed"
grep -q '"epoch":2' "$WORK/eco2.json" || fail "post-rejoin eco epoch wrong"
curl -sf "$COORD/slack" >"$WORK/slack2.json" || fail "GET /slack after rejoin"
grep -q '"epoch":2' "$WORK/slack2.json" || fail "merged slack not at epoch 2"
grep -q '"degraded":true' "$WORK/slack2.json" && fail "merged slack degraded after reconvergence"
echo "cluster smoke: worker rejoined, oplog replayed, epoch 2 committed everywhere"

echo "cluster smoke OK"
