#!/usr/bin/env bash
# CI smoke for the timingd daemon: start it on the example design, walk the
# query surface, commit an ECO and verify the re-queried baseline matches
# the commit's "after" exactly, push a brief load burst through it, then
# snapshot the state, hard-kill the daemon, and verify a -restore boot
# (snapshot + epoch-log replay) serves byte-identical answers. Fails on any
# non-2xx answer, on a baseline mismatch, on a restore divergence, or when
# the load burst falls under -min-qps.
set -euo pipefail

ADDR="127.0.0.1:18374"
BASE="http://$ADDR"
LOG="$(mktemp)"
BIN="$(mktemp -d)/timingd"
SNAPDIR="$(mktemp -d)"

cleanup() {
  if [[ -n "${DPID:-}" ]] && kill -0 "$DPID" 2>/dev/null; then
    kill "$DPID" 2>/dev/null || true
    wait "$DPID" 2>/dev/null || true
  fi
  rm -f "$LOG"
  rm -rf "$SNAPDIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/timingd

"$BIN" -addr "$ADDR" -gates 900 -ffs 64 -snapshot-dir "$SNAPDIR" >"$LOG" 2>&1 &
DPID=$!

# Wait for the ready banner (full MCMM load, so allow a little time).
for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DPID" 2>/dev/null; then
    echo "timingd exited during startup:"; cat "$LOG"; exit 1
  fi
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "daemon never became healthy"; cat "$LOG"; exit 1; }

# The startup banner prints a valid example op for this design.
OP_JSON="$(grep -o '{"op":.*}' "$LOG" | head -1)"
[[ -n "$OP_JSON" ]] || { echo "no example op in banner"; cat "$LOG"; exit 1; }
OP_CELL="$(sed -n 's/.*"cell":"\([^"]*\)".*/\1/p' <<<"$OP_JSON")"
OP_TO="$(sed -n 's/.*"to":"\([^"]*\)".*/\1/p' <<<"$OP_JSON")"
echo "smoke: using example op cell=$OP_CELL to=$OP_TO"

fail() { echo "smoke FAILED: $1"; cat "$LOG"; exit 1; }

# Query surface: every answer must be 2xx.
curl -sf "$BASE/slack" >/tmp/slack0.json || fail "GET /slack"
curl -sf "$BASE/endpoints?kind=hold&limit=3" >/dev/null || fail "GET /endpoints"
curl -sf "$BASE/paths?k=2" >/dev/null || fail "GET /paths"
curl -sf "$BASE/metrics" >/dev/null || fail "GET /metrics"
curl -sf "$BASE/metrics?format=prom" >/tmp/metrics.prom || fail "GET /metrics?format=prom"
grep -q '^# TYPE ' /tmp/metrics.prom || fail "prom exposition has no TYPE lines"

# Trace identity: the response must echo a trace ID, and ?debug=trace must
# return the span tree inline.
TRACE_ID="$(curl -sf -D - -o /dev/null "$BASE/slack" | tr -d '\r' | sed -n 's/^X-Trace-Id: //p')"
[[ -n "$TRACE_ID" ]] || fail "no X-Trace-Id on response"
curl -sf "$BASE/slack?debug=trace" | grep -q '"spans":' || fail "?debug=trace has no span tree"

# What-if must not advance the epoch or perturb the baseline.
curl -sf -d "{\"ops\":[$OP_JSON]}" "$BASE/whatif" >/tmp/whatif.json || fail "POST /whatif"
curl -sf "$BASE/slack" >/tmp/slack0b.json || fail "GET /slack after whatif"
cmp -s /tmp/slack0.json /tmp/slack0b.json || fail "whatif perturbed the baseline"

# ECO commit: epoch advances, and the re-queried slack must equal the
# commit's reported "after" numbers exactly.
curl -sf -d "{\"ops\":[$OP_JSON]}" "$BASE/eco" >/tmp/eco.json || fail "POST /eco"
grep -q '"committed":true' /tmp/eco.json || fail "eco not committed"
grep -q '"epoch":1' /tmp/eco.json || fail "eco epoch did not advance"
curl -sf "$BASE/slack" >/tmp/slack1.json || fail "GET /slack after eco"
AFTER="$(sed -n 's/.*"after":\(\[.*\]\),"committed".*/\1/p' /tmp/eco.json)"
NOW="$(sed -n 's/.*"scenarios":\(\[.*\]\)}/\1/p' /tmp/slack1.json)"
[[ -n "$AFTER" && "$AFTER" == "$NOW" ]] || {
  echo "eco after:     $AFTER"
  echo "queried slack: $NOW"
  fail "post-eco baseline does not match the commit's after"
}

# The flight recorder must have audited the commit above with its phase
# timeline, and the request ring must be populated.
curl -sf "$BASE/debug/epochs" >/tmp/epochs.json || fail "GET /debug/epochs"
grep -q '"apply_ms":' /tmp/epochs.json || fail "commit record has no phase durations"
grep -q '"epoch":1' /tmp/epochs.json || fail "commit record missing epoch 1"
curl -sf "$BASE/debug/requests?limit=5" | grep -q '"route":' || fail "GET /debug/requests empty"
curl -sf "$BASE/debug/slow?threshold_ms=0" >/dev/null || fail "GET /debug/slow"

# Brief load burst: mixed reads + what-ifs, hard floor on throughput. The
# JSON report (qps, per-route p50/p95/p99, mix) is archived by CI next to
# the benchmark snapshot.
LOADGEN_JSON="${LOADGEN_JSON:-loadgen-report.json}"
"$BIN" -loadgen -target "$BASE" -duration 3s -clients 8 \
  -whatif-cell "$OP_CELL" -whatif-to "$OP_TO" -min-qps 1000 -json \
  >"$LOADGEN_JSON" \
  || fail "loadgen under 1000 qps or errored"
grep -q '"qps":' "$LOADGEN_JSON" || fail "loadgen JSON report malformed"
echo "smoke: loadgen report written to $LOADGEN_JSON"

# Snapshot persistence: save a pack at epoch 1, commit a second ECO (only
# the epoch log records it), hard-kill the daemon, and boot a new one from
# the pack. Log replay must carry it to epoch 2 and /slack must come back
# byte-identical — the warm server is indistinguishable from the dead one.
curl -sf -X POST "$BASE/admin/save" >/tmp/save.json || fail "POST /admin/save"
SNAP_PATH="$(sed -n 's/.*"path":"\([^"]*\)".*/\1/p' /tmp/save.json)"
[[ -f "$SNAP_PATH" ]] || fail "snapshot pack $SNAP_PATH not on disk"
curl -sf -d "{\"ops\":[$OP_JSON]}" "$BASE/eco" >/dev/null || fail "POST /eco (second)"
curl -sf "$BASE/slack" >/tmp/slack2.json || fail "GET /slack after second eco"
kill -9 "$DPID"; wait "$DPID" 2>/dev/null || true

"$BIN" -addr "$ADDR" -restore "$SNAP_PATH" -snapshot-dir "$SNAPDIR" >"$LOG" 2>&1 &
DPID=$!
for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DPID" 2>/dev/null; then
    echo "restored timingd exited during startup:"; cat "$LOG"; exit 1
  fi
  sleep 0.2
done
grep -q "restored from" "$LOG" || fail "no restore banner"
curl -sf "$BASE/healthz" >/tmp/health.json || fail "GET /healthz after restore"
grep -q '"restored_from":' /tmp/health.json || fail "healthz has no restore provenance"
grep -q '"log_replayed":1' /tmp/health.json || fail "healthz did not count the replayed epoch"
curl -sf "$BASE/slack" >/tmp/slack_restored.json || fail "GET /slack after restore"
cmp -s /tmp/slack2.json /tmp/slack_restored.json || {
  echo "pre-kill:  $(cat /tmp/slack2.json)"
  echo "restored:  $(cat /tmp/slack_restored.json)"
  fail "restored /slack differs from the killed daemon's"
}
echo "smoke: restore from $SNAP_PATH verified byte-identical at epoch 2"

# Graceful shutdown.
kill -TERM "$DPID"
wait "$DPID" || fail "daemon exited nonzero on SIGTERM"
grep -q "bye" "$LOG" || fail "no graceful shutdown marker"
unset DPID
echo "smoke OK"
