#!/usr/bin/env bash
# Snapshot the hot-path benchmark pairs into a per-commit JSON record:
# BENCH_<sha>.json maps each benchmark name to its ns/op, B/op and
# allocs/op as measured with -benchmem. The pairs cover the SoA STA core
# (full Run serial/parallel, incremental vs full retime, MCMM survey), the
# resident daemon's query surface (BenchmarkTimingdQuery sub-benches), and
# the snapshot-pack boot pair (text-parse cold boot vs pack restore).
#
# Usage: scripts/bench_snapshot.sh [out.json]
#   out.json defaults to BENCH_<short-sha>.json in the repo root.
#   BENCHTIME overrides -benchtime (default 1x: a CI freshness smoke;
#   use e.g. BENCHTIME=2s for numbers worth comparing).
set -euo pipefail
cd "$(dirname "$0")/.."

SHA="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
OUT="${1:-BENCH_${SHA}.json}"
BT="${BENCHTIME:-1x}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

PAIRS='^(BenchmarkSTARunSerial|BenchmarkSTARunParallel|BenchmarkIncrementalRetime|BenchmarkFullRetime|BenchmarkMCMMSurveySerial|BenchmarkMCMMSurveyParallel)$'
go test -run='^$' -bench "$PAIRS" -benchmem -benchtime "$BT" . | tee "$RAW"
go test -run='^$' -bench '^(BenchmarkTimingdQuery|BenchmarkBootTextParse|BenchmarkBootPackRestore)$' -benchmem -benchtime "$BT" ./internal/timingd/ | tee -a "$RAW"

awk -v sha="$SHA" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns = $(i-1)
      if ($i == "B/op")      bytes = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) body = body ",\n"
    body = body "    \"" name "\": {\"ns_per_op\": " ns \
      ", \"bytes_per_op\": " (bytes == "" ? "null" : bytes) \
      ", \"allocs_per_op\": " (allocs == "" ? "null" : allocs) "}"
  }
  END {
    printf "{\n  \"commit\": \"%s\",\n  \"benchmarks\": {\n%s\n  }\n}\n", sha, body
  }
' "$RAW" >"$OUT"

echo "bench snapshot: $(grep -c ns_per_op "$OUT") benchmarks -> $OUT"
